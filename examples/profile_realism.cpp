// Profile realism: the paper's core motivation. Classic shilling attacks
// inject *fabricated* profiles (random filler items plus the target item),
// which defense work detects easily because their statistics differ from
// real users'. CopyAttack instead copies *real* cross-domain profiles.
//
// This example quantifies that difference with three detectability
// statistics, comparing three profile populations against the real
// target-domain users:
//
//   1. profile length distribution (mean / p10 / p90),
//   2. intra-profile coherence: mean pairwise cosine similarity of the
//      profile's item embeddings (real sessions are coherent; random
//      filler is not),
//   3. popularity footprint: the mean log-popularity of profile items
//      (fabricated profiles over-sample popular filler).
//
// Run: ./build/examples/profile_realism

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/crafting.h"
#include "data/synthetic.h"
#include "data/target_items.h"
#include "math/stats.h"
#include "math/vector_ops.h"
#include "rec/matrix_factorization.h"
#include "util/rng.h"

namespace {

using namespace copyattack;

struct ProfileStats {
  math::RunningStats length;
  math::RunningStats coherence;
  math::RunningStats popularity;
};

/// Mean pairwise cosine similarity between the embedding rows of the
/// profile's items (up to 12 sampled items to bound the quadratic cost).
double Coherence(const data::Profile& profile, const math::Matrix& items,
                 util::Rng& rng) {
  if (profile.size() < 2) return 1.0;
  std::vector<data::ItemId> sample(profile.begin(), profile.end());
  rng.Shuffle(sample);
  if (sample.size() > 12) sample.resize(12);
  const std::size_t dim = items.cols();
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    for (std::size_t j = i + 1; j < sample.size(); ++j) {
      std::vector<float> a(items.Row(sample[i]), items.Row(sample[i]) + dim);
      std::vector<float> b(items.Row(sample[j]), items.Row(sample[j]) + dim);
      math::NormalizeL2(a.data(), dim);
      math::NormalizeL2(b.data(), dim);
      total += math::Dot(a.data(), b.data(), dim);
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 1.0;
}

void Accumulate(ProfileStats& stats, const data::Profile& profile,
                const data::Dataset& target, const math::Matrix& items,
                util::Rng& rng) {
  stats.length.Add(static_cast<double>(profile.size()));
  stats.coherence.Add(Coherence(profile, items, rng));
  double log_pop = 0.0;
  for (const data::ItemId item : profile) {
    log_pop += std::log1p(static_cast<double>(target.ItemPopularity(item)));
  }
  stats.popularity.Add(log_pop / static_cast<double>(profile.size()));
}

void Print(const char* name, const ProfileStats& stats) {
  std::printf("%-28s len %6.1f ± %-6.1f  coherence %6.3f  log-pop %6.3f\n",
              name, stats.length.Mean(), stats.length.StdDev(),
              stats.coherence.Mean(), stats.popularity.Mean());
}

}  // namespace

int main() {
  const data::SyntheticConfig config = data::SyntheticConfig::SmallCross();
  const data::SyntheticWorld world = data::GenerateSyntheticWorld(config);
  util::Rng rng(5);

  // Item embeddings for the coherence statistic (MF on the target domain —
  // the kind of model a platform's fraud team would have).
  rec::MatrixFactorization mf;
  util::Rng train_rng(6);
  mf.Fit(world.dataset.target, 15, train_rng);
  const math::Matrix& items = mf.item_embeddings();

  const auto targets =
      data::SampleColdTargetItems(world.dataset, 20, 10, rng);

  ProfileStats real, copied, crafted, fabricated;

  // Real target-domain profiles (the reference population).
  for (int i = 0; i < 400; ++i) {
    const data::UserId u = static_cast<data::UserId>(
        rng.UniformUint64(world.dataset.target.num_users()));
    Accumulate(real, world.dataset.target.UserProfile(u),
               world.dataset.target, items, rng);
  }

  // CopyAttack populations: raw copied holders and crafted (50%) windows.
  for (const data::ItemId target : targets) {
    for (const data::UserId holder : world.dataset.SourceHolders(target)) {
      const data::Profile& profile =
          world.dataset.source.UserProfile(holder);
      Accumulate(copied, profile, world.dataset.target, items, rng);
      Accumulate(crafted,
                 copyattack::core::ClipProfileAroundTarget(profile, target,
                                                           0.5),
                 world.dataset.target, items, rng);
    }
  }

  // Classic shilling profiles: the target item plus random filler items.
  for (int i = 0; i < 400; ++i) {
    const data::ItemId target = targets[rng.UniformUint64(targets.size())];
    data::Profile fake = {target};
    while (fake.size() < 20) {
      const data::ItemId item = static_cast<data::ItemId>(
          rng.UniformUint64(world.dataset.target.num_items()));
      bool dup = false;
      for (const data::ItemId existing : fake) dup = dup || existing == item;
      if (!dup) fake.push_back(item);
    }
    Accumulate(fabricated, fake, world.dataset.target, items, rng);
  }

  std::printf("profile detectability statistics "
              "(closer to 'real users' = harder to detect)\n\n");
  Print("real users (reference)", real);
  Print("CopyAttack copied (raw)", copied);
  Print("CopyAttack crafted (50%)", crafted);
  Print("fabricated shilling", fabricated);

  std::printf("\ncoherence gap vs real users:\n");
  std::printf("  copied     %+.3f\n",
              copied.coherence.Mean() - real.coherence.Mean());
  std::printf("  crafted    %+.3f\n",
              crafted.coherence.Mean() - real.coherence.Mean());
  std::printf("  fabricated %+.3f  <- what defense papers flag\n",
              fabricated.coherence.Mean() - real.coherence.Mean());
  return 0;
}
