// Quickstart: the whole CopyAttack pipeline on a small synthetic world in
// under a minute.
//
//   1. Generate a cross-domain world (target domain A, source domain B).
//   2. Train the black-box PinSage-style target recommender on A.
//   3. Pre-train source-domain MF embeddings and build the balanced
//      hierarchical clustering tree over B's users.
//   4. Pick a cold target item and run CopyAttack for a few episodes.
//   5. Report the promotion (HR@20 over real users) before vs after.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart

#include <cstdio>

#include "core/copy_attack.h"
#include "core/environment.h"
#include "core/runner.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/target_items.h"
#include "rec/pinsage_lite.h"
#include "rec/trainer.h"

int main() {
  using namespace copyattack;

  // 1. A small cross-domain world: two movie platforms sharing items.
  //    (Same item universe as the SmallCross experiments, fewer users so
  //    the example runs in seconds.)
  data::SyntheticConfig config = data::SyntheticConfig::SmallCross();
  config.num_target_users = 1000;
  config.num_source_users = 3000;
  const data::SyntheticWorld world = data::GenerateSyntheticWorld(config);
  std::printf("world: %zu target users, %zu source users, %zu shared items\n",
              world.dataset.target.num_users(),
              world.dataset.source.num_users(),
              world.dataset.OverlapCount());

  // 2. Train the black-box target model (80/10/10, early stopping).
  util::Rng split_rng(1);
  const data::TrainValidTestSplit split =
      data::SplitDataset(world.dataset.target, split_rng);
  rec::PinSageLite model;
  util::Rng train_rng(2);
  const rec::TrainReport report = rec::TrainWithEarlyStopping(
      model, split, world.dataset.target, rec::TrainOptions{}, train_rng);
  std::printf("target model: test HR@10 = %.3f after %zu epochs\n",
              report.test_hr, report.epochs_run);

  // 3. Source-domain artifacts: MF embeddings + clustering tree.
  core::SourceArtifactOptions artifact_options;
  artifact_options.tree_depth = 3;
  const core::SourceArtifacts artifacts =
      core::PrepareSourceArtifacts(world.dataset, artifact_options);

  // 4. Attack one cold item with CopyAttack.
  util::Rng target_rng(3);
  const auto targets =
      data::SampleColdTargetItems(world.dataset, 1, 10, target_rng);
  const data::ItemId target_item = targets.at(0);
  std::printf("attacking cold item %u (popularity %zu, %zu source holders)\n",
              target_item, world.dataset.target.ItemPopularity(target_item),
              world.dataset.SourceHolders(target_item).size());

  core::EnvConfig env_config;
  env_config.budget = 30;
  env_config.num_pretend_users = 30;
  core::AttackEnvironment env(world.dataset, split.train, &model,
                              env_config);
  env.Reset(target_item);
  const auto before = env.EvaluateRealPromotion({20, 10, 5}, 200, 100);

  core::CopyAttack attack(&world.dataset, &artifacts.tree,
                          &artifacts.mf.user_embeddings(),
                          &artifacts.mf.item_embeddings(),
                          core::CopyAttackConfig{}, /*seed=*/4);
  attack.BeginTargetItem(target_item);
  util::Rng episode_rng(5);
  for (int episode = 0; episode < 8; ++episode) {
    env.Reset(target_item);
    const double reward = attack.RunEpisode(env, episode_rng);
    std::printf("  episode %d: pretend-user HR@20 reward = %.2f\n",
                episode + 1, reward);
  }

  // 5. Promotion achieved (over real users, not the attacker's pretend
  //    users), plus the attack cost.
  const auto after = env.EvaluateRealPromotion({20, 10, 5}, 200, 100);
  std::printf("\npromotion of item %u over real users:\n", target_item);
  for (const std::size_t k : {20UL, 10UL, 5UL}) {
    std::printf("  HR@%-2zu  %.4f -> %.4f\n", k, before.at(k).hr,
                after.at(k).hr);
  }
  const auto& bb = env.black_box();
  std::printf("cost: %zu profiles, %.1f items/profile, %zu query rounds\n",
              bb.injected_profiles(),
              bb.injected_profiles()
                  ? static_cast<double>(bb.injected_interactions()) /
                        static_cast<double>(bb.injected_profiles())
                  : 0.0,
              env.lifetime_queries());
  return 0;
}
