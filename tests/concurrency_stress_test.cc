// TSan-targeted stress suite for the concurrent episode hot path: shared
// ThreadPool initialization, nested/re-entrant ParallelFor, RunCampaign's
// distinct-slot outcome writes, and the Dataset single-writer contract.
// These tests are labeled `stress` and sized so ThreadSanitizer (which
// serializes heavily) still finishes well inside the ctest timeout;
// tools/check_all.sh runs them under the tsan preset.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/parallel_runner.h"
#include "core/runner.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rec/black_box.h"
#include "serve/job_queue.h"
#include "test_helpers.h"
#include "test_seed.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace copyattack {
namespace {

using testhelpers::SharedTinyWorld;
using testhelpers::TestSeed;
using util::ThreadPool;

// --- ThreadPool::Shared() initialization -----------------------------------

// Many external threads race to be the first user of the shared pool; the
// magic-static construction plus concurrent Submit/ParallelFor traffic must
// be race-free and every task must run exactly once.
TEST(ThreadPoolStressTest, SharedPoolInitAndSubmitFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kTasksPerThread = 64;
  std::atomic<int> executed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&executed] {
      for (int i = 0; i < kTasksPerThread; ++i) {
        ThreadPool::Shared().Submit(
            [&executed] { executed.fetch_add(1); });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ThreadPool::Shared().Wait();
  EXPECT_EQ(executed.load(), kThreads * kTasksPerThread);
}

// Concurrent top-level ParallelFor calls from distinct external threads
// share the pool; each call must see exactly its own range.
TEST(ThreadPoolStressTest, ConcurrentTopLevelParallelForCalls) {
  constexpr int kCallers = 6;
  constexpr std::size_t kRange = 512;
  std::vector<std::atomic<std::uint64_t>> sums(kCallers);
  for (auto& sum : sums) sum.store(0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&sums, c] {
      ThreadPool::ParallelFor(kRange, 4, [&sums, c](std::size_t i) {
        sums[c].fetch_add(i + 1);
      });
    });
  }
  for (auto& caller : callers) caller.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c].load(), kRange * (kRange + 1) / 2) << "caller " << c;
  }
}

// --- Nested / re-entrant ParallelFor ---------------------------------------

// A nested call from inside a ParallelFor body used to submit helper tasks
// to the same pool and block on them — a deadlock once every worker was
// parked in an outer wait. The fix runs nested ranges inline; this test
// both regression-checks the hang (via the ctest timeout) and verifies
// every (outer, inner) pair executes exactly once under TSan.
TEST(ThreadPoolStressTest, NestedParallelForRunsEveryPairOnce) {
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> cells(kOuter * kInner);
  for (auto& cell : cells) cell.store(0);
  ThreadPool::ParallelFor(kOuter, 8, [&cells](std::size_t outer) {
    ThreadPool::ParallelFor(kInner, 8, [&cells, outer](std::size_t inner) {
      cells[outer * kInner + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].load(), 1) << "cell " << i;
  }
}

// Three levels deep, repeated — exercises the thread-local re-entrancy
// flag's set/restore across many pool tasks.
TEST(ThreadPoolStressTest, DeeplyNestedParallelForConverges) {
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> count{0};
    ThreadPool::ParallelFor(4, 4, [&count](std::size_t) {
      ThreadPool::ParallelFor(4, 4, [&count](std::size_t) {
        ThreadPool::ParallelFor(4, 4,
                                [&count](std::size_t) { count.fetch_add(1); });
      });
    });
    ASSERT_EQ(count.load(), 4 * 4 * 4) << "round " << round;
  }
}

// --- Observability under concurrency ---------------------------------------

// The metrics hot path (sharded relaxed atomics) and the span recorder
// (per-thread rings) must be TSan-clean and lose no increments while many
// external threads record simultaneously with telemetry enabled.
TEST(ObsStressTest, CountersHistogramsAndSpansFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 512;
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("stress.ops");
  obs::Histogram& histogram =
      registry.GetHistogram("stress.value", {64.0, 256.0, 448.0});
  obs::TraceRecorder::Global().Clear();
  obs::SetEnabled(true);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        obs::ScopedSpan span("stress.op");
        counter.Add(1);
        histogram.Observe(static_cast<double>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  obs::SetEnabled(false);

  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  // Each thread observes 0..511 once: sum = threads * 511*512/2.
  EXPECT_DOUBLE_EQ(snapshot.sum, kThreads * (511.0 * 512.0 / 2.0));
  // Spans recorded concurrently: every event must be accounted for, either
  // still in a ring or counted as overwritten.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  EXPECT_EQ(recorder.Collect().size() + recorder.overwritten(),
            static_cast<std::size_t>(kThreads) * kOpsPerThread);
  recorder.Clear();
}

// --- RunCampaign distinct-slot writes --------------------------------------

// Campaign workers write disjoint outcome slots without locks; under TSan
// this validates the claim, and comparing against the sequential run pins
// the paper-protocol guarantee that threading never changes the metrics.
TEST(CampaignStressTest, ParallelCampaignMatchesSequentialBitExact) {
  const auto& tw = SharedTinyWorld();
  util::Rng rng(TestSeed(71));
  const auto targets =
      data::SampleColdTargetItems(tw.world.dataset, 6, 10, rng);
  ASSERT_GE(targets.size(), 2U);

  core::CampaignConfig config;
  config.env.budget = 6;
  config.env.query_interval = 3;
  config.env.num_pretend_users = 8;
  config.env.query_candidates = 40;
  config.episodes = 2;
  config.eval_users = 40;
  config.eval_negatives = 30;
  auto factory = [&](std::uint64_t) {
    return std::make_unique<core::TargetAttack>(tw.world.dataset, 0.7);
  };

  config.num_threads = 1;
  const auto sequential =
      core::RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(),
                        factory, targets, config);
  for (int round = 0; round < 3; ++round) {
    config.num_threads = 8;
    const auto threaded =
        core::RunCampaign(tw.world.dataset, tw.split.train,
                          tw.ModelFactory(), factory, targets, config);
    ASSERT_EQ(threaded.method, sequential.method);
    for (const std::size_t k : config.eval_ks) {
      ASSERT_EQ(threaded.metrics.at(k).hr, sequential.metrics.at(k).hr)
          << "HR@" << k << " diverged in round " << round;
      ASSERT_EQ(threaded.metrics.at(k).ndcg, sequential.metrics.at(k).ndcg)
          << "NDCG@" << k << " diverged in round " << round;
    }
    ASSERT_EQ(threaded.avg_items_per_profile,
              sequential.avg_items_per_profile);
    ASSERT_EQ(threaded.avg_final_reward, sequential.avg_final_reward);
  }
}

// --- Sharded runner under TSan ---------------------------------------------

// The ISSUE-6 soak: the sharded runner's cross-shard state (global outcome
// slots, the episode counter, the abort flag, aggregated shard stats) must
// be race-free while shards outnumber worker threads, and the merged result
// must still equal the single-shard run.
TEST(CampaignStressTest, ShardedRunnerManyShardsMatchesSingleShard) {
  const auto& tw = SharedTinyWorld();
  util::Rng rng(TestSeed(79));
  const auto targets =
      data::SampleColdTargetItems(tw.world.dataset, 6, 10, rng);
  ASSERT_GE(targets.size(), 4U);

  core::CampaignConfig config;
  config.env.budget = 6;
  config.env.query_interval = 3;
  config.env.num_pretend_users = 8;
  config.env.query_candidates = 40;
  config.episodes = 2;
  config.eval_users = 40;
  config.eval_negatives = 30;
  const core::StrategyFactory factory = [&tw](std::uint64_t) {
    return std::make_unique<core::TargetAttack>(tw.world.dataset, 0.7);
  };

  core::ParallelRunnerOptions single;
  single.jobs = 1;
  single.shards = 1;
  const core::ParallelCampaignRunner reference_runner(
      tw.world.dataset, tw.split.train, tw.ModelFactory(), factory, single);
  const auto reference = reference_runner.Run(targets, config);

  for (int round = 0; round < 3; ++round) {
    core::ParallelRunnerOptions options;
    options.jobs = 4;
    options.shards = targets.size();
    const core::ParallelCampaignRunner runner(
        tw.world.dataset, tw.split.train, tw.ModelFactory(), factory,
        options);
    const auto sharded = runner.Run(targets, config);
    ASSERT_EQ(sharded.completed, reference.completed) << "round " << round;
    ASSERT_EQ(sharded.aggregate.avg_final_reward,
              reference.aggregate.avg_final_reward)
        << "round " << round;
    for (const std::size_t k : config.eval_ks) {
      ASSERT_EQ(sharded.aggregate.metrics.at(k).hr,
                reference.aggregate.metrics.at(k).hr)
          << "HR@" << k << " diverged in round " << round;
    }
    std::size_t items = 0;
    for (const auto& shard : sharded.shards) items += shard.num_items;
    ASSERT_EQ(items, targets.size());
  }
}

// --- JobQueue producer/consumer handshake ----------------------------------

// Many producers and consumers hammer one queue; every job pushed must be
// popped exactly once and Close must wake every blocked consumer.
TEST(JobQueueStressTest, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kJobsPerProducer = 200;
  serve::JobQueue queue;
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &popped] {
      serve::PromotionJob job;
      while (queue.Pop(&job)) popped.fetch_add(1);
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kJobsPerProducer; ++i) {
        serve::PromotionJob job;
        // Built by append (GCC 12's -Wrestrict misfires on the
        // equivalent operator+ chain at -O2).
        job.id = "p";
        job.id += std::to_string(p);
        job.id += '_';
        job.id += std::to_string(i);
        queue.Push(job);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  queue.Close();
  for (auto& consumer : consumers) consumer.join();

  EXPECT_EQ(popped.load(), kProducers * kJobsPerProducer);
  EXPECT_EQ(queue.pending(), 0U);
}

// --- Dataset checkpoint/rollback under concurrency -------------------------

data::Dataset BuildSmallDataset(std::uint64_t seed) {
  util::Rng rng(seed);
  data::Dataset dataset(64);
  for (int u = 0; u < 40; ++u) {
    data::Profile profile;
    const auto picks = rng.SampleWithoutReplacement(64, 6);
    for (const std::size_t item : picks) {
      profile.push_back(static_cast<data::ItemId>(item));
    }
    dataset.AddUser(std::move(profile));
  }
  return dataset;
}

// The supported concurrent pattern: each thread owns its dataset and runs
// the checkpoint → mutate → rollback episode loop. TSan proves there is no
// hidden shared state between instances; the final state must equal the
// checkpointed one.
TEST(DatasetStressTest, PerThreadCheckpointRollbackIsIndependent) {
  constexpr int kThreads = 8;
  constexpr int kEpisodes = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      data::Dataset dataset = BuildSmallDataset(TestSeed(100 + t));
      const std::size_t base_users = dataset.num_users();
      const std::size_t base_interactions = dataset.num_interactions();
      util::Rng rng(TestSeed(500 + t));
      const data::DatasetCheckpoint checkpoint = dataset.Checkpoint();
      for (int episode = 0; episode < kEpisodes; ++episode) {
        for (int u = 0; u < 5; ++u) {
          data::Profile profile;
          profile.push_back(static_cast<data::ItemId>(
              rng.UniformUint64(dataset.num_items())));
          dataset.AddUser(std::move(profile));
        }
        dataset.RollbackTo(checkpoint);
        if (dataset.num_users() != base_users ||
            dataset.num_interactions() != base_interactions) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// Misuse: two threads mutating ONE dataset violates the single-writer
// contract. The mutation sentinel must abort with a diagnostic before the
// overlapping writer corrupts the vectors — deterministically, because
// every mutating entry point checks the flag before touching data.
TEST(DatasetStressTest, ConcurrentMutationOfOneDatasetIsFatal) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        data::Dataset dataset = BuildSmallDataset(7);
        std::atomic<bool> start{false};
        std::vector<std::thread> writers;
        for (int t = 0; t < 4; ++t) {
          writers.emplace_back([&dataset, &start, t] {
            while (!start.load()) {
            }
            util::Rng rng(1000 + t);
            for (int i = 0; i < 200000; ++i) {
              const auto checkpoint = dataset.Checkpoint();
              data::Profile profile;
              profile.push_back(static_cast<data::ItemId>(
                  rng.UniformUint64(dataset.num_items())));
              dataset.AddUser(std::move(profile));
              dataset.RollbackTo(checkpoint);
            }
          });
        }
        start.store(true);
        for (auto& writer : writers) writer.join();
      },
      "concurrent Dataset mutation");
}

// Misuse: rolling back with a checkpoint that does not describe a prefix of
// the dataset (here: taken from a different dataset with another item
// universe) must abort, not silently mis-truncate.
TEST(DatasetStressTest, ForeignCheckpointIsFatal) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        data::Dataset a = BuildSmallDataset(7);
        data::Dataset b(a.num_items() + 1);
        const auto checkpoint = b.Checkpoint();
        a.Checkpoint();  // enable journaling on `a`
        a.RollbackTo(checkpoint);
      },
      "");
}

// The black-box attack meters are relaxed atomics (CA_ATOMIC_ONLY): many
// threads querying one oracle must tally exactly, with no torn or lost
// increments for TSan to flag. (Injection mutates the dataset and stays
// single-threaded by contract; queries are the concurrent operation.)
TEST(BlackBoxStressTest, ConcurrentQueriesCountExactly) {
  const auto& tw = testhelpers::SharedTinyWorld();
  rec::PinSageLite model(tw.model);
  data::Dataset polluted = tw.split.train;
  model.BeginServing(polluted);
  rec::BlackBoxRecommender bb(&model, &polluted);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kQueriesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bb, t] {
      const std::vector<data::ItemId> candidates = {0, 1, 2, 3, 4, 5};
      for (std::size_t i = 0; i < kQueriesPerThread; ++i) {
        bb.QueryTopK(static_cast<data::UserId>(t % 4), candidates, 3);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bb.query_count(), kThreads * kQueriesPerThread);
}

TEST(DatasetStressTest, RollbackWithoutCheckpointIsFatal) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        data::Dataset dataset = BuildSmallDataset(7);
        data::DatasetCheckpoint forged;
        forged.item_profile_sizes.assign(dataset.num_items(), 0);
        dataset.RollbackTo(forged);
      },
      "RollbackTo without a prior Checkpoint");
}

}  // namespace
}  // namespace copyattack
