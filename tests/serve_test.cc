// Tests of the attack-server subsystem (ISSUE 6): promotion-job CSV
// parsing, the job queue's producer/consumer handshake, the shared
// strategy dispatch table, and end-to-end job execution with per-job
// checkpoint/resume.

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel_runner.h"
#include "serve/attack_server.h"
#include "serve/job_queue.h"
#include "test_helpers.h"
#include "test_seed.h"

namespace copyattack::serve {
namespace {

using testhelpers::SharedTinyWorld;
using testhelpers::TinyWorld;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ParseJobsCsv, ParsesRowsSkippingHeaderCommentsAndBlanks) {
  std::istringstream in(
      "id,method,targets,budget,episodes,seed\n"
      "\n"
      "# promote the winter catalog\n"
      "promo-1,CopyAttack,4,10,3,99\n"
      "promo_2, TargetAttack40 , 2 , 5 , 1 , 7\n");
  std::vector<PromotionJob> jobs;
  std::string error;
  ASSERT_TRUE(ParseJobsCsv(in, &jobs, &error)) << error;
  ASSERT_EQ(jobs.size(), 2U);
  EXPECT_EQ(jobs[0].id, "promo-1");
  EXPECT_EQ(jobs[0].method, "CopyAttack");
  EXPECT_EQ(jobs[0].num_targets, 4U);
  EXPECT_EQ(jobs[0].budget, 10U);
  EXPECT_EQ(jobs[0].episodes, 3U);
  EXPECT_EQ(jobs[0].seed, 99U);
  EXPECT_EQ(jobs[1].id, "promo_2");
  EXPECT_EQ(jobs[1].method, "TargetAttack40");
  EXPECT_EQ(jobs[1].seed, 7U);
}

TEST(ParseJobsCsv, RejectsMalformedRowsWithLineNumbers) {
  const struct {
    const char* csv;
    const char* expect;
  } cases[] = {
      {"a,CopyAttack,1,1\n", "expected 6 fields"},
      {"bad id!,CopyAttack,1,1,1,1\n", "job id"},
      {"a,,1,1,1,1\n", "method"},
      {"a,CopyAttack,0,1,1,1\n", "targets"},
      {"a,CopyAttack,1,-3,1,1\n", "budget"},
      {"a,CopyAttack,1,1,x,1\n", "episodes"},
  };
  for (const auto& test_case : cases) {
    std::istringstream in(std::string("# leading comment\n") +
                          test_case.csv);
    std::vector<PromotionJob> jobs;
    std::string error;
    EXPECT_FALSE(ParseJobsCsv(in, &jobs, &error)) << test_case.csv;
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find(test_case.expect), std::string::npos) << error;
  }
}

TEST(JobQueueTest, DeliversInFifoOrderThenSignalsClosed) {
  JobQueue queue;
  PromotionJob a;
  a.id = "a";
  PromotionJob b;
  b.id = "b";
  queue.Push(a);
  queue.Push(b);
  EXPECT_EQ(queue.pending(), 2U);
  queue.Close();
  EXPECT_TRUE(queue.closed());

  PromotionJob out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.id, "a");
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.id, "b");
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_FALSE(queue.Pop(&out));  // stays closed
}

TEST(JobQueueTest, BlockedConsumerWakesOnPushAndClose) {
  JobQueue queue;
  std::vector<std::string> seen;
  std::thread consumer([&] {
    PromotionJob job;
    while (queue.Pop(&job)) seen.push_back(job.id);
  });
  PromotionJob job;
  job.id = "x";
  queue.Push(job);
  job.id = "y";
  queue.Push(job);
  queue.Close();
  consumer.join();
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], "x");
  EXPECT_EQ(seen[1], "y");
}

TEST(MakeStrategyFactoryTest, ResolvesEveryKnownMethod) {
  const TinyWorld& world = SharedTinyWorld();
  const struct {
    const char* method;
    bool learns;
  } cases[] = {
      {"RandomAttack", false},      {"TargetAttack40", false},
      {"TargetAttack70", false},    {"TargetAttack100", false},
      {"PolicyNetwork", true},      {"CopyAttack", true},
      {"CopyAttack-Masking", true}, {"CopyAttack-Length", true},
      {"SurrogateTransfer", true},  {"Influence", true},
  };
  for (const auto& test_case : cases) {
    const StrategySpec spec = MakeStrategyFactory(
        world.world.dataset, world.artifacts, test_case.method);
    ASSERT_TRUE(static_cast<bool>(spec.factory)) << test_case.method;
    EXPECT_EQ(spec.learns, test_case.learns) << test_case.method;
    const auto strategy = spec.factory(1);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), test_case.method);
  }
  EXPECT_FALSE(static_cast<bool>(
      MakeStrategyFactory(world.world.dataset, world.artifacts, "Nope")
          .factory));
}

TEST(MakeStrategyFactoryTest, ResolvesSnakeCaseZooAliases) {
  const TinyWorld& world = SharedTinyWorld();
  const struct {
    const char* alias;
    const char* canonical;
  } cases[] = {
      {"surrogate_transfer", "SurrogateTransfer"},
      {"influence", "Influence"},
  };
  for (const auto& test_case : cases) {
    const StrategySpec spec = MakeStrategyFactory(
        world.world.dataset, world.artifacts, test_case.alias);
    ASSERT_TRUE(static_cast<bool>(spec.factory)) << test_case.alias;
    EXPECT_EQ(spec.factory(1)->name(), test_case.canonical);
  }
}

TEST(MakeStrategyFactoryTest, UnknownMethodErrorListsRegisteredNames) {
  const TinyWorld& world = SharedTinyWorld();
  const StrategySpec spec =
      MakeStrategyFactory(world.world.dataset, world.artifacts, "Nope");
  EXPECT_FALSE(static_cast<bool>(spec.factory));
  EXPECT_NE(spec.error.find("unknown --method 'Nope'"), std::string::npos)
      << spec.error;
  // The message must enumerate every registered method so a typo'd CLI
  // flag or job row is self-diagnosing.
  for (const std::string& name : RegisteredMethods()) {
    EXPECT_NE(spec.error.find(name), std::string::npos) << name;
  }
  // A resolvable method never carries an error.
  EXPECT_TRUE(MakeStrategyFactory(world.world.dataset, world.artifacts,
                                  "CopyAttack")
                  .error.empty());
}

ServerConfig TestServerConfig() {
  ServerConfig config;
  config.runner.jobs = 1;
  return config;
}

PromotionJob TestJob(const std::string& id, const std::string& method) {
  PromotionJob job;
  job.id = id;
  job.method = method;
  job.num_targets = 2;
  job.budget = 5;
  job.episodes = 2;
  job.seed = testhelpers::TestSeed(83);
  return job;
}

TEST(AttackServerTest, RunsJobsAndReportsUnknownMethods) {
  const TinyWorld& world = SharedTinyWorld();
  AttackServer server(world.world.dataset, world.split.train,
                      world.ModelFactory(), world.artifacts,
                      TestServerConfig());

  JobQueue queue;
  queue.Push(TestJob("ok-job", "TargetAttack40"));
  queue.Push(TestJob("bad-job", "NoSuchMethod"));
  queue.Close();

  const std::vector<JobReport> reports = server.Drain(&queue);
  ASSERT_EQ(reports.size(), 2U);
  EXPECT_TRUE(reports[0].ok);
  EXPECT_EQ(reports[0].job.id, "ok-job");
  EXPECT_GT(reports[0].result.aggregate.num_target_items, 0U);
  EXPECT_EQ(reports[0].result.aggregate.method, "TargetAttack40");
  EXPECT_FALSE(reports[1].ok);
  EXPECT_NE(reports[1].error.find("NoSuchMethod"), std::string::npos);
  EXPECT_EQ(server.jobs_run(), 1U);
  EXPECT_EQ(server.jobs_failed(), 1U);
}

TEST(AttackServerTest, JobCheckpointResumeMatchesUninterruptedJob) {
  const TinyWorld& world = SharedTinyWorld();
  const PromotionJob job = TestJob("resumable", "CopyAttack");

  // Reference: the job runs straight through without crash safety.
  AttackServer plain(world.world.dataset, world.split.train,
                     world.ModelFactory(), world.artifacts,
                     TestServerConfig());
  const JobReport reference = plain.RunJob(job);
  ASSERT_TRUE(reference.ok);
  ASSERT_FALSE(reference.result.aggregate.aborted);

  // Crash mid-job, then resume from `<root>/job_<id>`.
  const std::string root = FreshDir("attack_server_resume");
  ServerConfig crash_config = TestServerConfig();
  crash_config.checkpoint_root = root;
  crash_config.runner.checkpoint.abort_after_episodes = 2;
  AttackServer crashed(world.world.dataset, world.split.train,
                       world.ModelFactory(), world.artifacts,
                       crash_config);
  const JobReport aborted = crashed.RunJob(job);
  ASSERT_TRUE(aborted.ok);
  EXPECT_TRUE(aborted.result.aggregate.aborted);
  EXPECT_TRUE(std::filesystem::exists(root + "/job_" + job.id));

  ServerConfig resume_config = TestServerConfig();
  resume_config.checkpoint_root = root;
  resume_config.resume = true;
  AttackServer resumed_server(world.world.dataset, world.split.train,
                              world.ModelFactory(), world.artifacts,
                              resume_config);
  const JobReport resumed = resumed_server.RunJob(job);
  ASSERT_TRUE(resumed.ok);
  EXPECT_FALSE(resumed.result.aggregate.aborted);
  EXPECT_NE(resumed.result.aggregate.resumed_from,
            core::CheckpointSource::kNone);

  EXPECT_EQ(resumed.result.aggregate.avg_final_reward,
            reference.result.aggregate.avg_final_reward);
  EXPECT_EQ(resumed.result.aggregate.avg_profiles_injected,
            reference.result.aggregate.avg_profiles_injected);
  EXPECT_EQ(resumed.result.aggregate.num_target_items,
            reference.result.aggregate.num_target_items);
  for (const auto& [k, metrics] : reference.result.aggregate.metrics) {
    const auto it = resumed.result.aggregate.metrics.find(k);
    ASSERT_NE(it, resumed.result.aggregate.metrics.end());
    EXPECT_EQ(metrics.hr, it->second.hr);
    EXPECT_EQ(metrics.ndcg, it->second.ndcg);
  }
}

}  // namespace
}  // namespace copyattack::serve
