// Tests of the attack-server subsystem (ISSUE 6): promotion-job CSV
// parsing, the job queue's producer/consumer handshake, the shared
// strategy dispatch table, and end-to-end job execution with per-job
// checkpoint/resume.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel_runner.h"
#include "serve/attack_server.h"
#include "serve/job_queue.h"
#include "test_helpers.h"
#include "test_seed.h"

namespace copyattack::serve {
namespace {

using testhelpers::SharedTinyWorld;
using testhelpers::TinyWorld;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ParseJobsCsv, ParsesRowsSkippingHeaderCommentsAndBlanks) {
  std::istringstream in(
      "id,method,targets,budget,episodes,seed\n"
      "\n"
      "# promote the winter catalog\n"
      "promo-1,CopyAttack,4,10,3,99\n"
      "promo_2, TargetAttack40 , 2 , 5 , 1 , 7\n");
  std::vector<PromotionJob> jobs;
  std::string error;
  ASSERT_TRUE(ParseJobsCsv(in, &jobs, &error)) << error;
  ASSERT_EQ(jobs.size(), 2U);
  EXPECT_EQ(jobs[0].id, "promo-1");
  EXPECT_EQ(jobs[0].method, "CopyAttack");
  EXPECT_EQ(jobs[0].num_targets, 4U);
  EXPECT_EQ(jobs[0].budget, 10U);
  EXPECT_EQ(jobs[0].episodes, 3U);
  EXPECT_EQ(jobs[0].seed, 99U);
  EXPECT_EQ(jobs[1].id, "promo_2");
  EXPECT_EQ(jobs[1].method, "TargetAttack40");
  EXPECT_EQ(jobs[1].seed, 7U);
}

TEST(ParseJobsCsv, RejectsMalformedRowsWithLineNumbers) {
  const struct {
    const char* csv;
    const char* expect;
  } cases[] = {
      {"a,CopyAttack,1,1\n", "expected 6 fields"},
      {"bad id!,CopyAttack,1,1,1,1\n", "job id"},
      {"a,,1,1,1,1\n", "method"},
      {"a,CopyAttack,0,1,1,1\n", "targets"},
      {"a,CopyAttack,1,-3,1,1\n", "budget"},
      {"a,CopyAttack,1,1,x,1\n", "episodes"},
  };
  for (const auto& test_case : cases) {
    std::istringstream in(std::string("# leading comment\n") +
                          test_case.csv);
    std::vector<PromotionJob> jobs;
    std::string error;
    EXPECT_FALSE(ParseJobsCsv(in, &jobs, &error)) << test_case.csv;
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find(test_case.expect), std::string::npos) << error;
  }
}

TEST(ParseJobsCsv, RejectsDuplicateJobIds) {
  // A duplicate id would collide on `checkpoint_root/job_<id>` and
  // silently resume the first job's checkpoint.
  std::istringstream in(
      "id,method,targets,budget,episodes,seed\n"
      "promo-1,CopyAttack,4,10,3,99\n"
      "promo-1,TargetAttack40,2,5,1,7\n");
  std::vector<PromotionJob> jobs;
  std::string error;
  EXPECT_FALSE(ParseJobsCsv(in, &jobs, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("duplicate job id 'promo-1'"), std::string::npos)
      << error;
}

TEST(ParseJobsCsv, RejectsBlankAndWhitespaceOnlyJobIds) {
  std::istringstream in(" ,CopyAttack,1,1,1,1\n");
  std::vector<PromotionJob> jobs;
  std::string error;
  EXPECT_FALSE(ParseJobsCsv(in, &jobs, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("blank"), std::string::npos) << error;
}

TEST(JobQueueTest, DeliversInFifoOrderThenSignalsClosed) {
  JobQueue queue;
  PromotionJob a;
  a.id = "a";
  PromotionJob b;
  b.id = "b";
  queue.Push(a);
  queue.Push(b);
  EXPECT_EQ(queue.pending(), 2U);
  queue.Close();
  EXPECT_TRUE(queue.closed());

  PromotionJob out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.id, "a");
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.id, "b");
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_FALSE(queue.Pop(&out));  // stays closed
}

TEST(JobQueueTest, BlockedConsumerWakesOnPushAndClose) {
  JobQueue queue;
  std::vector<std::string> seen;
  std::thread consumer([&] {
    PromotionJob job;
    while (queue.Pop(&job)) seen.push_back(job.id);
  });
  PromotionJob job;
  job.id = "x";
  queue.Push(job);
  job.id = "y";
  queue.Push(job);
  queue.Close();
  consumer.join();
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], "x");
  EXPECT_EQ(seen[1], "y");
}

TEST(JobQueueTest, TakeRemainingDrainsWithoutBlocking) {
  JobQueue queue;
  PromotionJob job;
  job.id = "r1";
  queue.Push(job);
  job.id = "r2";
  queue.Push(job);
  const std::vector<PromotionJob> remaining = queue.TakeRemaining();
  ASSERT_EQ(remaining.size(), 2U);
  EXPECT_EQ(remaining[0].id, "r1");
  EXPECT_EQ(remaining[1].id, "r2");
  EXPECT_EQ(queue.pending(), 0U);
  queue.Close();
  PromotionJob out;
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(MakeStrategyFactoryTest, ResolvesEveryKnownMethod) {
  const TinyWorld& world = SharedTinyWorld();
  const struct {
    const char* method;
    bool learns;
  } cases[] = {
      {"RandomAttack", false},      {"TargetAttack40", false},
      {"TargetAttack70", false},    {"TargetAttack100", false},
      {"PolicyNetwork", true},      {"CopyAttack", true},
      {"CopyAttack-Masking", true}, {"CopyAttack-Length", true},
      {"SurrogateTransfer", true},  {"Influence", true},
  };
  for (const auto& test_case : cases) {
    const StrategySpec spec = MakeStrategyFactory(
        world.world.dataset, world.artifacts, test_case.method);
    ASSERT_TRUE(static_cast<bool>(spec.factory)) << test_case.method;
    EXPECT_EQ(spec.learns, test_case.learns) << test_case.method;
    const auto strategy = spec.factory(1);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->name(), test_case.method);
  }
  EXPECT_FALSE(static_cast<bool>(
      MakeStrategyFactory(world.world.dataset, world.artifacts, "Nope")
          .factory));
}

TEST(MakeStrategyFactoryTest, ResolvesSnakeCaseZooAliases) {
  const TinyWorld& world = SharedTinyWorld();
  const struct {
    const char* alias;
    const char* canonical;
  } cases[] = {
      {"surrogate_transfer", "SurrogateTransfer"},
      {"influence", "Influence"},
  };
  for (const auto& test_case : cases) {
    const StrategySpec spec = MakeStrategyFactory(
        world.world.dataset, world.artifacts, test_case.alias);
    ASSERT_TRUE(static_cast<bool>(spec.factory)) << test_case.alias;
    EXPECT_EQ(spec.factory(1)->name(), test_case.canonical);
  }
}

TEST(MakeStrategyFactoryTest, UnknownMethodErrorListsRegisteredNames) {
  const TinyWorld& world = SharedTinyWorld();
  const StrategySpec spec =
      MakeStrategyFactory(world.world.dataset, world.artifacts, "Nope");
  EXPECT_FALSE(static_cast<bool>(spec.factory));
  EXPECT_NE(spec.error.find("unknown --method 'Nope'"), std::string::npos)
      << spec.error;
  // The message must enumerate every registered method so a typo'd CLI
  // flag or job row is self-diagnosing.
  for (const std::string& name : RegisteredMethods()) {
    EXPECT_NE(spec.error.find(name), std::string::npos) << name;
  }
  // A resolvable method never carries an error.
  EXPECT_TRUE(MakeStrategyFactory(world.world.dataset, world.artifacts,
                                  "CopyAttack")
                  .error.empty());
}

ServerConfig TestServerConfig() {
  ServerConfig config;
  config.runner.jobs = 1;
  return config;
}

PromotionJob TestJob(const std::string& id, const std::string& method) {
  PromotionJob job;
  job.id = id;
  job.method = method;
  job.num_targets = 2;
  job.budget = 5;
  job.episodes = 2;
  job.seed = testhelpers::TestSeed(83);
  return job;
}

TEST(AttackServerTest, RunsJobsAndReportsUnknownMethods) {
  const TinyWorld& world = SharedTinyWorld();
  AttackServer server(world.world.dataset, world.split.train,
                      world.ModelFactory(), world.artifacts,
                      TestServerConfig());

  JobQueue queue;
  queue.Push(TestJob("ok-job", "TargetAttack40"));
  queue.Push(TestJob("bad-job", "NoSuchMethod"));
  queue.Close();

  const std::vector<JobReport> reports = server.Drain(&queue);
  ASSERT_EQ(reports.size(), 2U);
  EXPECT_TRUE(reports[0].ok);
  EXPECT_EQ(reports[0].job.id, "ok-job");
  EXPECT_GT(reports[0].result.aggregate.num_target_items, 0U);
  EXPECT_EQ(reports[0].result.aggregate.method, "TargetAttack40");
  EXPECT_FALSE(reports[1].ok);
  EXPECT_NE(reports[1].error.find("NoSuchMethod"), std::string::npos);
  EXPECT_EQ(server.jobs_run(), 1U);
  EXPECT_EQ(server.jobs_failed(), 1U);
}

TEST(AttackServerTest, JobCheckpointResumeMatchesUninterruptedJob) {
  const TinyWorld& world = SharedTinyWorld();
  const PromotionJob job = TestJob("resumable", "CopyAttack");

  // Reference: the job runs straight through without crash safety.
  AttackServer plain(world.world.dataset, world.split.train,
                     world.ModelFactory(), world.artifacts,
                     TestServerConfig());
  const JobReport reference = plain.RunJob(job);
  ASSERT_TRUE(reference.ok);
  ASSERT_FALSE(reference.result.aggregate.aborted);

  // Crash mid-job, then resume from `<root>/job_<id>`.
  const std::string root = FreshDir("attack_server_resume");
  ServerConfig crash_config = TestServerConfig();
  crash_config.checkpoint_root = root;
  crash_config.runner.checkpoint.abort_after_episodes = 2;
  AttackServer crashed(world.world.dataset, world.split.train,
                       world.ModelFactory(), world.artifacts,
                       crash_config);
  const JobReport aborted = crashed.RunJob(job);
  ASSERT_TRUE(aborted.ok);
  EXPECT_TRUE(aborted.result.aggregate.aborted);
  EXPECT_TRUE(std::filesystem::exists(root + "/job_" + job.id));

  ServerConfig resume_config = TestServerConfig();
  resume_config.checkpoint_root = root;
  resume_config.resume = true;
  AttackServer resumed_server(world.world.dataset, world.split.train,
                              world.ModelFactory(), world.artifacts,
                              resume_config);
  const JobReport resumed = resumed_server.RunJob(job);
  ASSERT_TRUE(resumed.ok);
  EXPECT_FALSE(resumed.result.aggregate.aborted);
  EXPECT_NE(resumed.result.aggregate.resumed_from,
            core::CheckpointSource::kNone);

  EXPECT_EQ(resumed.result.aggregate.avg_final_reward,
            reference.result.aggregate.avg_final_reward);
  EXPECT_EQ(resumed.result.aggregate.avg_profiles_injected,
            reference.result.aggregate.avg_profiles_injected);
  EXPECT_EQ(resumed.result.aggregate.num_target_items,
            reference.result.aggregate.num_target_items);
  for (const auto& [k, metrics] : reference.result.aggregate.metrics) {
    const auto it = resumed.result.aggregate.metrics.find(k);
    ASSERT_NE(it, resumed.result.aggregate.metrics.end());
    EXPECT_EQ(metrics.hr, it->second.hr);
    EXPECT_EQ(metrics.ndcg, it->second.ndcg);
  }
}

// ---------------------------------------------------------------------------
// Supervision (ISSUE 10): watchdog deadline, retries, quarantine, drain.

/// The drain flag is process-global; every drain test scopes it.
struct DrainGuard {
  DrainGuard() { ResetDrainForTest(); }
  ~DrainGuard() { ResetDrainForTest(); }
};

std::size_t ReadAttemptsFile(const std::string& job_dir) {
  std::ifstream in(AttemptsPath(job_dir));
  std::size_t attempts = 0;
  in >> attempts;
  return attempts;
}

TEST(AttackServerSupervisionTest, WedgedJobIsKilledRetriedAndQuarantined) {
  const TinyWorld& world = SharedTinyWorld();
  const std::string root = FreshDir("attack_server_wedged");
  ServerConfig config = TestServerConfig();
  config.checkpoint_root = root;
  config.job_deadline_seconds = 10.0;  // ten fake-clock ticks
  config.max_attempts = 2;
  config.retry_backoff_seconds = 0.25;
  // Virtual clock: every observation advances one second, so a job that
  // keeps playing episodes (each episode polls the watchdog) blows its
  // deadline deterministically, with no wall-clock in the test at all.
  auto ticks = std::make_shared<std::int64_t>(0);
  config.now_ns = [ticks] { return ++*ticks * 1'000'000'000; };
  auto slept = std::make_shared<std::vector<double>>();
  config.sleep_seconds = [slept](double s) { slept->push_back(s); };

  AttackServer server(world.world.dataset, world.split.train,
                      world.ModelFactory(), world.artifacts, config);
  // Wedged: far more episodes than the deadline allows. The quick job
  // behind it must still run — a wedged job must not stall the queue.
  PromotionJob wedged = TestJob("wedged", "CopyAttack");
  wedged.num_targets = 1;
  wedged.episodes = 200;
  JobQueue queue;
  queue.Push(wedged);
  queue.Push(TestJob("after-wedge", "TargetAttack40"));
  queue.Close();

  const std::vector<JobReport> reports = server.Drain(&queue);
  ASSERT_EQ(reports.size(), 2U);

  const JobReport& report = reports[0];
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.timed_out);
  EXPECT_TRUE(report.quarantined);
  EXPECT_EQ(report.attempts, 2U);
  EXPECT_NE(report.error.find("deadline"), std::string::npos)
      << report.error;
  // One retry => one backoff sleep, at the base interval.
  ASSERT_EQ(slept->size(), 1U);
  EXPECT_DOUBLE_EQ((*slept)[0], 0.25);
  // The burned attempts stay on disk (a restart must not grant the job a
  // fresh budget), and the quarantine ledger names the job.
  EXPECT_EQ(ReadAttemptsFile(root + "/job_wedged"), 2U);
  std::ifstream quarantine(QuarantinePath(root));
  ASSERT_TRUE(quarantine.is_open());
  std::string quarantine_text((std::istreambuf_iterator<char>(quarantine)),
                              std::istreambuf_iterator<char>());
  EXPECT_NE(quarantine_text.find("wedged,CopyAttack"), std::string::npos)
      << quarantine_text;

  // The queue kept moving: the job behind the wedge completed.
  EXPECT_TRUE(reports[1].ok);
  EXPECT_EQ(reports[1].job.id, "after-wedge");
  EXPECT_EQ(server.jobs_run(), 1U);
  EXPECT_EQ(server.jobs_failed(), 1U);

  // A resubmit of the quarantined job is refused before it runs: the
  // persisted attempt counter already exhausted max_attempts.
  AttackServer fresh(world.world.dataset, world.split.train,
                     world.ModelFactory(), world.artifacts, config);
  const JobReport resubmitted = fresh.RunJob(wedged);
  EXPECT_FALSE(resubmitted.ok);
  EXPECT_TRUE(resubmitted.quarantined);
  EXPECT_NE(resubmitted.error.find("quarantined before start"),
            std::string::npos)
      << resubmitted.error;
}

TEST(AttackServerSupervisionTest, UnlimitedAttemptsNeverQuarantine) {
  // max_attempts = 0 (the chaos soak's setting): a deadline kill retries
  // forever — here the clock freezes after the first kill, so the second
  // attempt runs to completion instead.
  const TinyWorld& world = SharedTinyWorld();
  const std::string root = FreshDir("attack_server_unlimited");
  ServerConfig config = TestServerConfig();
  config.checkpoint_root = root;
  config.job_deadline_seconds = 10.0;
  config.max_attempts = 0;
  auto ticks = std::make_shared<std::int64_t>(0);
  config.now_ns = [ticks] {
    if (*ticks < 12) ++*ticks;  // wedge attempt 1, then freeze the clock
    return *ticks * 1'000'000'000;
  };
  AttackServer server(world.world.dataset, world.split.train,
                      world.ModelFactory(), world.artifacts, config);
  // Enough episodes that attempt 1 cannot finish before the clock passes
  // the deadline (each episode polls the watchdog at least once).
  PromotionJob job = TestJob("eventually-ok", "CopyAttack");
  job.num_targets = 1;
  job.episodes = 30;
  const JobReport report = server.RunJob(job);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.timed_out);  // attempt 1 was killed
  EXPECT_FALSE(report.quarantined);
  EXPECT_GE(report.attempts, 2U);
  // Success clears the on-disk attempt counter.
  EXPECT_FALSE(std::filesystem::exists(AttemptsPath(root + "/job_" +
                                                    job.id)));
}

TEST(AttackServerDrainTest, DrainBeforeServingPersistsWholeQueue) {
  DrainGuard guard;
  const TinyWorld& world = SharedTinyWorld();
  const std::string root = FreshDir("attack_server_drain_idle");
  ServerConfig config = TestServerConfig();
  config.checkpoint_root = root;
  AttackServer server(world.world.dataset, world.split.train,
                      world.ModelFactory(), world.artifacts, config);
  JobQueue queue;
  queue.Push(TestJob("q1", "TargetAttack40"));
  queue.Push(TestJob("q2", "TargetAttack70"));
  queue.Close();

  RequestDrain();
  const std::vector<JobReport> reports = server.Drain(&queue);
  EXPECT_TRUE(reports.empty());

  std::ifstream in(RemainingJobsPath(root));
  ASSERT_TRUE(in.is_open());
  std::vector<PromotionJob> remaining;
  std::string error;
  ASSERT_TRUE(ParseJobsCsv(in, &remaining, &error)) << error;
  ASSERT_EQ(remaining.size(), 2U);
  EXPECT_EQ(remaining[0].id, "q1");
  EXPECT_EQ(remaining[1].id, "q2");
}

TEST(AttackServerDrainTest, MidRunDrainCheckpointsAndRequeuesCutJob) {
  DrainGuard guard;
  const TinyWorld& world = SharedTinyWorld();
  const std::string root = FreshDir("attack_server_drain_midrun");
  ServerConfig config = TestServerConfig();
  config.checkpoint_root = root;
  // The watchdog clock doubles as the deterministic "SIGTERM arrives
  // mid-job" trigger: the fourth observation raises the drain flag. The
  // deadline itself is far away — this job is healthy, just unlucky.
  config.job_deadline_seconds = 1e6;
  auto ticks = std::make_shared<std::int64_t>(0);
  config.now_ns = [ticks] {
    if (++*ticks == 4) RequestDrain();
    return *ticks;  // nanoseconds: elapsed stays ~0
  };
  AttackServer server(world.world.dataset, world.split.train,
                      world.ModelFactory(), world.artifacts, config);
  PromotionJob cut = TestJob("cut-short", "CopyAttack");
  cut.num_targets = 1;
  cut.episodes = 50;
  JobQueue queue;
  queue.Push(cut);
  queue.Push(TestJob("never-ran", "TargetAttack40"));
  queue.Close();

  const std::vector<JobReport> reports = server.Drain(&queue);
  ASSERT_EQ(reports.size(), 1U);
  EXPECT_TRUE(reports[0].drained);
  EXPECT_FALSE(reports[0].ok);
  EXPECT_FALSE(reports[0].timed_out);

  // The cut job is requeued FIRST (its checkpoint resumes the run), then
  // the job the drain never reached.
  std::ifstream in(RemainingJobsPath(root));
  ASSERT_TRUE(in.is_open());
  std::vector<PromotionJob> remaining;
  std::string error;
  ASSERT_TRUE(ParseJobsCsv(in, &remaining, &error)) << error;
  ASSERT_EQ(remaining.size(), 2U);
  EXPECT_EQ(remaining[0].id, "cut-short");
  EXPECT_EQ(remaining[1].id, "never-ran");
  // The drained attempt was rolled back — shutting the server down must
  // not burn the job's retry budget.
  EXPECT_EQ(ReadAttemptsFile(root + "/job_cut-short"), 0U);
  // And its checkpoint exists, so the restart resumes rather than replays.
  EXPECT_TRUE(std::filesystem::exists(root + "/job_cut-short"));
}

}  // namespace
}  // namespace copyattack::serve
