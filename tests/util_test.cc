#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_seed.h"

#include "util/checksum.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace copyattack::util {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(testhelpers::TestSeed(42)), b(testhelpers::TestSeed(42));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(testhelpers::TestSeed(1)), b(testhelpers::TestSeed(2));
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(testhelpers::TestSeed(7));
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LT(v, 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(testhelpers::TestSeed(7));
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformCoversAllBuckets) {
  Rng rng(testhelpers::TestSeed(11));
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.UniformUint64(10)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(testhelpers::TestSeed(13));
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(testhelpers::TestSeed(3));
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30U);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30U);
  for (const std::size_t v : sample) EXPECT_LT(v, 100U);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(testhelpers::TestSeed(3));
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10U);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(testhelpers::TestSeed(5));
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(testhelpers::TestSeed(9));
  Rng child = a.Fork();
  // Child stream should not replicate the parent's next outputs.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(testhelpers::TestSeed(1));
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  const auto fields = Split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4U);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringUtilsTest, TrimRemovesWhitespace) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilsTest, JoinConcatenates) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilsTest, StartsWithWorks) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringUtilsTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 4), "1.0000");
}

TEST(StringUtilsTest, ParseSizeT) {
  std::size_t v = 0;
  EXPECT_TRUE(ParseSizeT("123", &v));
  EXPECT_EQ(v, 123U);
  EXPECT_TRUE(ParseSizeT(" 7 ", &v));
  EXPECT_EQ(v, 7U);
  EXPECT_FALSE(ParseSizeT("abc", &v));
  EXPECT_FALSE(ParseSizeT("", &v));
  EXPECT_FALSE(ParseSizeT("12x", &v));
  EXPECT_FALSE(ParseSizeT("-2", &v));  // strtoull would negate silently
  EXPECT_FALSE(ParseSizeT("+2", &v));
}

TEST(StringUtilsTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-2e3", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("x", &v));
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path = testing::TempDir() + "/ca_csv_test.csv";
  {
    CsvWriter writer(path, {"a", "b"});
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"1", "2"});
    writer.WriteRow({"x", "y"});
    writer.Flush();
  }
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ReadCsv(path, &header, &rows));
  EXPECT_EQ(header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"x", "y"}));
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  EXPECT_FALSE(ReadCsv("/nonexistent/path/file.csv", &header, &rows));
}

TEST(CsvTest, EmptyFieldsSurvive) {
  const std::string path = testing::TempDir() + "/ca_csv_empty.csv";
  {
    CsvWriter writer(path, {"a", "b", "c"});
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"", "mid", ""});
    writer.WriteRow({"", "", ""});
    writer.Flush();
  }
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ReadCsv(path, &header, &rows));
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "mid", ""}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", "", ""}));
  std::remove(path.c_str());
}

TEST(CsvTest, QuotedCommasAndQuotesRoundTrip) {
  const std::string path = testing::TempDir() + "/ca_csv_quoted.csv";
  {
    CsvWriter writer(path, {"label", "value"});
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"a,b", "plain"});
    writer.WriteRow({"say \"hi\"", "x,y,z"});
    writer.Flush();
  }
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ReadCsv(path, &header, &rows));
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "plain"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"say \"hi\"", "x,y,z"}));
  std::remove(path.c_str());
}

TEST(CsvTest, EscapeCsvFieldQuotesOnlyWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField("3.14"), "3.14");
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("he said \"x\""), "\"he said \"\"x\"\"\"");
  EXPECT_EQ(EscapeCsvField("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, ParseCsvLineMalformedRowsAreLenient) {
  // Unterminated quote: remainder of the field is taken verbatim.
  EXPECT_EQ(ParseCsvLine("\"unterminated,still same field"),
            (std::vector<std::string>{"unterminated,still same field"}));
  // Quote opening mid-field is literal, not an opener.
  EXPECT_EQ(ParseCsvLine("ab\"cd,2"),
            (std::vector<std::string>{"ab\"cd", "2"}));
  // Trailing comma yields a final empty field.
  EXPECT_EQ(ParseCsvLine("a,b,"),
            (std::vector<std::string>{"a", "b", ""}));
  // A lone empty line is one empty field (callers skip blank lines).
  EXPECT_EQ(ParseCsvLine(""), (std::vector<std::string>{""}));
}

TEST(CsvTest, RaggedRowsAreReturnedAsIs) {
  // ReadCsv does not validate arity against the header — readers in
  // bench tooling decide; this pins the lenient contract.
  const std::string path = testing::TempDir() + "/ca_csv_ragged.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1\nx,y,z\n";
  }
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(ReadCsv(path, &header, &rows));
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[0].size(), 1U);
  EXPECT_EQ(rows[1].size(), 3U);
  std::remove(path.c_str());
}

TEST(CsvDeathTest, WrongArityRowAborts) {
  const std::string path = testing::TempDir() + "/ca_csv_arity.csv";
  CsvWriter writer(path, {"a", "b"});
  ASSERT_TRUE(writer.ok());
  EXPECT_DEATH(writer.WriteRow({"only-one"}), "lhs=1 rhs=2");
  std::remove(path.c_str());
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch watch;
  const double a = watch.ElapsedSeconds();
  const double b = watch.ElapsedSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(50);
  ThreadPool::ParallelFor(50, 4, [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSequentialFallback) {
  std::vector<int> order;
  ThreadPool::ParallelFor(5, 1, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace copyattack::util

#include "util/flags.h"

namespace copyattack::util {
namespace {

FlagParser MakeTestParser() {
  FlagParser parser;
  parser.Define("name", "default", "a string flag")
      .Define("count", "3", "an integer flag")
      .Define("rate", "0.5", "a double flag")
      .Define("verbose", "false", "a boolean switch");
  return parser;
}

TEST(FlagParserTest, DefaultsApplyWithoutArguments) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run"};
  ASSERT_TRUE(parser.Parse(1, argv));
  EXPECT_EQ(parser.command(), "run");
  EXPECT_EQ(parser.GetString("name"), "default");
  EXPECT_EQ(parser.GetSizeT("count"), 3U);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate"), 0.5);
  EXPECT_FALSE(parser.GetBool("verbose"));
  EXPECT_FALSE(parser.WasSupplied("name"));
}

TEST(FlagParserTest, EqualsAndSpaceForms) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run", "--name=alpha", "--count", "7"};
  ASSERT_TRUE(parser.Parse(4, argv));
  EXPECT_EQ(parser.GetString("name"), "alpha");
  EXPECT_EQ(parser.GetSizeT("count"), 7U);
  EXPECT_TRUE(parser.WasSupplied("name"));
  EXPECT_TRUE(parser.WasSupplied("count"));
}

TEST(FlagParserTest, BareSwitchBecomesTrue) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run", "--verbose"};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagParserTest, SwitchFollowedByFlag) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run", "--verbose", "--count=2"};
  ASSERT_TRUE(parser.Parse(3, argv));
  EXPECT_TRUE(parser.GetBool("verbose"));
  EXPECT_EQ(parser.GetSizeT("count"), 2U);
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run", "a", "--count=1", "b"};
  ASSERT_TRUE(parser.Parse(4, argv));
  EXPECT_EQ(parser.command(), "run");
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"a", "b"}));
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run", "--bogus=1"};
  EXPECT_FALSE(parser.Parse(2, argv));
  EXPECT_FALSE(parser.ok());
  EXPECT_NE(parser.error().find("bogus"), std::string::npos);
}

TEST(FlagParserTest, ReparseResetsState) {
  FlagParser parser = MakeTestParser();
  const char* argv1[] = {"run", "--name=x"};
  ASSERT_TRUE(parser.Parse(2, argv1));
  const char* argv2[] = {"run"};
  ASSERT_TRUE(parser.Parse(1, argv2));
  EXPECT_EQ(parser.GetString("name"), "default");
  EXPECT_FALSE(parser.WasSupplied("name"));
}

TEST(FlagParserTest, HelpTextMentionsFlags) {
  FlagParser parser = MakeTestParser();
  const std::string help = parser.HelpText();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("--rate"), std::string::npos);
}

TEST(FlagParserDeathTest, UndeclaredAccessAborts) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run"};
  ASSERT_TRUE(parser.Parse(1, argv));
  EXPECT_DEATH(parser.GetString("nope"), "undeclared flag");
}

TEST(FlagParserDeathTest, BadIntegerAborts) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run", "--count=xyz"};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_DEATH(parser.GetSizeT("count"), "not an unsigned integer");
}

TEST(FlagParserTest, EmptyValueViaEqualsIsKept) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run", "--name="};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_TRUE(parser.WasSupplied("name"));
  EXPECT_EQ(parser.GetString("name"), "");
}

TEST(FlagParserTest, DuplicateSupplyLastOneWins) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run", "--name=first", "--name=second"};
  ASSERT_TRUE(parser.Parse(3, argv));
  EXPECT_EQ(parser.GetString("name"), "second");
}

TEST(FlagParserTest, ValueContainingEqualsSplitsOnce) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run", "--name=k=v"};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_EQ(parser.GetString("name"), "k=v");
}

TEST(FlagParserTest, TrailingValuelessFlagBecomesTrue) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run", "--verbose"};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_EQ(parser.GetString("verbose"), "true");
}

TEST(FlagParserTest, BadBooleanAbortsOnAccessNotParse) {
  FlagParser parser = MakeTestParser();
  const char* argv[] = {"run", "--verbose=maybe"};
  // Parsing succeeds (values are strings); the typed accessor enforces.
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_DEATH(parser.GetBool("verbose"), "not a boolean");
}

TEST(FlagParserTest, PositiveIntAcceptsPositiveValues) {
  FlagParser parser;
  parser.DefinePositiveInt("jobs", "1", "worker thread count");
  const char* argv[] = {"run", "--jobs=4"};
  ASSERT_TRUE(parser.Parse(2, argv));
  EXPECT_EQ(parser.GetSizeT("jobs"), 4U);
}

TEST(FlagParserTest, PositiveIntDefaultApplies) {
  FlagParser parser;
  parser.DefinePositiveInt("jobs", "1", "worker thread count");
  const char* argv[] = {"run"};
  ASSERT_TRUE(parser.Parse(1, argv));
  EXPECT_EQ(parser.GetSizeT("jobs"), 1U);
  EXPECT_FALSE(parser.WasSupplied("jobs"));
}

TEST(FlagParserTest, PositiveIntRejectsZeroNegativeAndGarbageAtParse) {
  const char* bad_values[] = {"0", "-2", "abc", "", "1.5"};
  for (const char* value : bad_values) {
    FlagParser parser;
    parser.DefinePositiveInt("jobs", "1", "worker thread count");
    const std::string arg = std::string("--jobs=") + value;
    const char* argv[] = {"run", arg.c_str()};
    EXPECT_FALSE(parser.Parse(2, argv)) << arg;
    EXPECT_FALSE(parser.ok());
    EXPECT_NE(parser.error().find("expects a positive integer"),
              std::string::npos)
        << parser.error();
    EXPECT_NE(parser.error().find("--jobs"), std::string::npos)
        << parser.error();
  }
}

TEST(FlagParserDeathTest, DuplicateDefineAborts) {
  FlagParser parser;
  parser.Define("twice", "1", "first declaration");
  EXPECT_DEATH(parser.Define("twice", "2", "second declaration"),
               "declared twice");
}

TEST(ChecksumTest, Crc32MatchesIeeeReferenceVector) {
  // The canonical CRC-32/IEEE check value.
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926U);
}

TEST(ChecksumTest, Crc32EmptyAndSensitivity) {
  EXPECT_EQ(Crc32(std::string()), 0U);
  const std::string payload = "checkpoint payload";
  std::string flipped = payload;
  flipped[3] ^= 0x01;
  EXPECT_NE(Crc32(payload), Crc32(flipped));
}

TEST(RngStateTest, SaveRestoreRoundTripContinuesStream) {
  Rng rng(testhelpers::TestSeed(12345));
  for (int i = 0; i < 10; ++i) rng.NextUint64();
  const RngState state = rng.SaveState();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 16; ++i) expected.push_back(rng.NextUint64());

  Rng other(1);  // different seed; RestoreState must fully overwrite
  other.RestoreState(state);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(other.NextUint64(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(RngStateTest, SaveRestorePreservesCachedNormal) {
  // Normal() generates pairs and caches the second draw; the state must
  // carry the cache or the restored stream would skew by one draw.
  Rng rng(testhelpers::TestSeed(777));
  rng.Normal();  // leaves one cached normal behind
  const RngState state = rng.SaveState();
  const double expected = rng.Normal();
  Rng other(2);
  other.RestoreState(state);
  EXPECT_EQ(other.Normal(), expected);  // lint:allow(float-eq) exact replay
}

}  // namespace
}  // namespace copyattack::util
