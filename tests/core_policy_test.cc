#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "test_seed.h"

#include "cluster/hierarchical_tree.h"
#include "core/crafting_policy.h"
#include "core/selection_policy.h"
#include "math/matrix.h"
#include "util/rng.h"

namespace copyattack::core {
namespace {

/// Fixture: 16 users with 4-D embeddings, a branching-2 tree, and simple
/// item embeddings. "Profiles": user u holds item (u % 4).
class PolicyFixture : public ::testing::Test {
 protected:
  PolicyFixture()
      : rng_(testhelpers::TestSeed(5)),
        users_(MakeUsers()),
        items_(MakeItems()),
        tree_(cluster::HierarchicalTree::Build(users_, 2, rng_)) {}

  static math::Matrix MakeUsers() {
    util::Rng rng(testhelpers::TestSeed(1));
    math::Matrix m(16, 4);
    m.FillNormal(rng, 0.0f, 1.0f);
    return m;
  }

  static math::Matrix MakeItems() {
    util::Rng rng(testhelpers::TestSeed(2));
    math::Matrix m(4, 4);
    m.FillNormal(rng, 0.0f, 1.0f);
    return m;
  }

  std::vector<bool> MaskForItem(data::ItemId item) const {
    return tree_.ComputeMask(
        [item](std::size_t user) { return user % 4 == item; });
  }

  HierarchicalSelectionPolicy MakePolicy() {
    util::Rng init_rng(testhelpers::TestSeed(9));
    return HierarchicalSelectionPolicy(&tree_, &users_, &items_,
                                       HierarchicalSelectionPolicy::Config{},
                                       init_rng);
  }

  util::Rng rng_;
  math::Matrix users_;
  math::Matrix items_;
  cluster::HierarchicalTree tree_;
};

TEST_F(PolicyFixture, SampleRespectsMask) {
  auto policy = MakePolicy();
  const data::ItemId item = 2;
  policy.SetTargetItem(item, MaskForItem(item));
  util::Rng rng(testhelpers::TestSeed(11));
  for (int i = 0; i < 50; ++i) {
    SelectionStepRecord record;
    const data::UserId user = policy.SampleUser({}, rng, &record);
    EXPECT_EQ(user % 4, item) << "masked user selected";
    EXPECT_EQ(record.chosen_user, user);
    EXPECT_FALSE(record.path.empty());
  }
}

TEST_F(PolicyFixture, AvailableCountMatchesMask) {
  auto policy = MakePolicy();
  policy.SetTargetItem(1, MaskForItem(1));
  EXPECT_EQ(policy.AvailableCount(), 4U);  // users 1, 5, 9, 13
  EXPECT_TRUE(policy.AnyAvailable());
}

TEST_F(PolicyFixture, MarkUserSelectedShrinksPool) {
  auto policy = MakePolicy();
  policy.SetTargetItem(1, MaskForItem(1));
  util::Rng rng(testhelpers::TestSeed(13));
  std::set<data::UserId> seen;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(policy.AnyAvailable());
    SelectionStepRecord record;
    const data::UserId user = policy.SampleUser({}, rng, &record);
    EXPECT_TRUE(seen.insert(user).second) << "user selected twice";
    policy.MarkUserSelected(user);
  }
  EXPECT_FALSE(policy.AnyAvailable());
  EXPECT_EQ(policy.AvailableCount(), 0U);
}

TEST_F(PolicyFixture, ResetEpisodeMaskRestoresPool) {
  auto policy = MakePolicy();
  policy.SetTargetItem(1, MaskForItem(1));
  util::Rng rng(testhelpers::TestSeed(13));
  SelectionStepRecord record;
  const data::UserId user = policy.SampleUser({}, rng, &record);
  policy.MarkUserSelected(user);
  EXPECT_EQ(policy.AvailableCount(), 3U);
  policy.ResetEpisodeMask();
  EXPECT_EQ(policy.AvailableCount(), 4U);
}

TEST_F(PolicyFixture, PathsFollowTreeEdges) {
  auto policy = MakePolicy();
  policy.SetTargetItem(0, MaskForItem(0));
  util::Rng rng(testhelpers::TestSeed(17));
  SelectionStepRecord record;
  policy.SampleUser({}, rng, &record);
  std::size_t node = tree_.root();
  for (const auto& decision : record.path) {
    EXPECT_EQ(decision.node_id, node);
    ASSERT_LT(decision.action, tree_.node(node).children.size());
    node = tree_.node(node).children[decision.action];
  }
  EXPECT_TRUE(tree_.IsLeaf(node));
  EXPECT_EQ(tree_.node(node).leaf_user, record.chosen_user);
}

TEST_F(PolicyFixture, GradientUpdateIncreasesChosenPathProbability) {
  auto policy = MakePolicy();
  policy.SetTargetItem(0, MaskForItem(0));
  util::Rng rng(testhelpers::TestSeed(19));
  SelectionStepRecord record;
  const data::UserId user = policy.SampleUser({}, rng, &record);

  // Estimate selection frequency of `user` before reinforcement.
  auto frequency = [&](util::Rng& sample_rng) {
    int hits = 0;
    for (int i = 0; i < 400; ++i) {
      SelectionStepRecord r;
      if (policy.SampleUser({}, sample_rng, &r) == user) ++hits;
    }
    return hits / 400.0;
  };
  util::Rng freq_rng_a(testhelpers::TestSeed(23));
  const double before = frequency(freq_rng_a);

  // Reinforce the recorded choice several times with positive advantage.
  for (int i = 0; i < 10; ++i) {
    policy.AccumulateGradients(record, 1.0);
    policy.ApplyUpdates(0.2f, 0.0f);
  }

  util::Rng freq_rng_b(testhelpers::TestSeed(23));
  const double after = frequency(freq_rng_b);
  EXPECT_GT(after, before + 0.05)
      << "positive advantage must increase the chosen user's probability";
}

TEST_F(PolicyFixture, NegativeAdvantageDecreasesProbability) {
  auto policy = MakePolicy();
  policy.SetTargetItem(0, MaskForItem(0));
  util::Rng rng(testhelpers::TestSeed(29));
  SelectionStepRecord record;
  const data::UserId user = policy.SampleUser({}, rng, &record);

  auto frequency = [&](util::Rng& sample_rng) {
    int hits = 0;
    for (int i = 0; i < 400; ++i) {
      SelectionStepRecord r;
      if (policy.SampleUser({}, sample_rng, &r) == user) ++hits;
    }
    return hits / 400.0;
  };
  util::Rng freq_rng_a(testhelpers::TestSeed(31));
  const double before = frequency(freq_rng_a);
  for (int i = 0; i < 10; ++i) {
    policy.AccumulateGradients(record, -1.0);
    policy.ApplyUpdates(0.2f, 0.0f);
  }
  util::Rng freq_rng_b(testhelpers::TestSeed(31));
  const double after = frequency(freq_rng_b);
  EXPECT_LT(after, before + 0.02);
}

TEST_F(PolicyFixture, RnnStateChangesDistribution) {
  // The same policy with different selected-user histories should produce
  // (at least slightly) different sampling distributions once trained a
  // bit; here we only assert the state vector differs via behavior: train
  // on history A, then the distribution conditioned on A differs from the
  // one conditioned on B.
  auto policy = MakePolicy();
  policy.SetTargetItem(0, MaskForItem(0));
  util::Rng rng(testhelpers::TestSeed(37));

  SelectionStepRecord record;
  policy.SampleUser({1, 2}, rng, &record);
  for (int i = 0; i < 20; ++i) {
    policy.AccumulateGradients(record, 1.0);
    policy.ApplyUpdates(0.3f, 0.0f);
  }

  auto frequency = [&](const std::vector<data::UserId>& history,
                       std::uint64_t seed) {
    util::Rng sample_rng(testhelpers::TestSeed(seed));
    int hits = 0;
    for (int i = 0; i < 500; ++i) {
      SelectionStepRecord r;
      if (policy.SampleUser(history, sample_rng, &r) ==
          record.chosen_user) {
        ++hits;
      }
    }
    return hits / 500.0;
  };
  const double with_history = frequency({1, 2}, 41);
  const double without_history = frequency({}, 41);
  // Trained conditioned on history {1,2}; that context should favor the
  // reinforced user at least as much as the empty context.
  EXPECT_GE(with_history, without_history - 0.05);
}

TEST_F(PolicyFixture, TotalParameterCountPositive) {
  auto policy = MakePolicy();
  EXPECT_GT(policy.TotalParameterCount(), 0U);
}

TEST_F(PolicyFixture, CraftingPolicySamplesValidLevels) {
  util::Rng init_rng(testhelpers::TestSeed(43));
  CraftingPolicy policy(&users_, &items_, CraftingPolicy::Config{},
                        init_rng);
  policy.SetTargetItem(1);
  util::Rng rng(testhelpers::TestSeed(47));
  for (int i = 0; i < 100; ++i) {
    CraftStepRecord record;
    const std::size_t level = policy.SampleLevel(3, rng, &record);
    EXPECT_LT(level, kNumCraftLevels);
    EXPECT_EQ(record.user, 3U);
    EXPECT_EQ(record.action, level);
  }
}

TEST_F(PolicyFixture, CraftingPolicyLearnsPreferredLevel) {
  util::Rng init_rng(testhelpers::TestSeed(53));
  CraftingPolicy policy(&users_, &items_, CraftingPolicy::Config{},
                        init_rng);
  policy.SetTargetItem(2);
  util::Rng rng(testhelpers::TestSeed(59));

  // Reward only level 4: it should dominate after training.
  for (int episode = 0; episode < 300; ++episode) {
    CraftStepRecord record;
    const std::size_t level = policy.SampleLevel(7, rng, &record);
    const double reward = (level == 4) ? 1.0 : 0.0;
    policy.AccumulateGradients(record, reward - 0.1);
    policy.ApplyUpdates(0.2f, 5.0f);
  }
  int hits = 0;
  for (int i = 0; i < 200; ++i) {
    CraftStepRecord record;
    if (policy.SampleLevel(7, rng, &record) == 4) ++hits;
  }
  EXPECT_GT(hits, 120) << "crafting policy failed to learn level 4";
}

TEST_F(PolicyFixture, DeterministicGivenSameSeeds) {
  auto policy_a = MakePolicy();
  auto policy_b = MakePolicy();
  policy_a.SetTargetItem(0, MaskForItem(0));
  policy_b.SetTargetItem(0, MaskForItem(0));
  util::Rng rng_a(testhelpers::TestSeed(61)), rng_b(testhelpers::TestSeed(61));
  for (int i = 0; i < 10; ++i) {
    SelectionStepRecord ra, rb;
    EXPECT_EQ(policy_a.SampleUser({}, rng_a, &ra),
              policy_b.SampleUser({}, rng_b, &rb));
  }
}

TEST_F(PolicyFixture, SampleAfterFullMaskAborts) {
  auto policy = MakePolicy();
  // Static mask allowing nothing is rejected at the tree level: the root
  // is masked and sampling must abort.
  policy.SetTargetItem(0,
                       std::vector<bool>(tree_.num_nodes(), false));
  util::Rng rng(testhelpers::TestSeed(67));
  SelectionStepRecord record;
  EXPECT_DEATH(policy.SampleUser({}, rng, &record), "no selectable user");
}

}  // namespace
}  // namespace copyattack::core

namespace copyattack::core {
namespace {

TEST_F(PolicyFixture, GreedySamplingIsDeterministic) {
  auto policy = MakePolicy();
  policy.SetTargetItem(0, MaskForItem(0));
  util::Rng rng_a(testhelpers::TestSeed(71)), rng_b(testhelpers::TestSeed(99));  // different RNGs — greedy must ignore
  SelectionStepRecord ra, rb;
  const data::UserId a =
      policy.SampleUser({}, rng_a, &ra, /*greedy=*/true);
  const data::UserId b =
      policy.SampleUser({}, rng_b, &rb, /*greedy=*/true);
  EXPECT_EQ(a, b);
}

TEST_F(PolicyFixture, GreedyRespectsMask) {
  auto policy = MakePolicy();
  policy.SetTargetItem(3, MaskForItem(3));
  util::Rng rng(testhelpers::TestSeed(71));
  SelectionStepRecord record;
  const data::UserId user =
      policy.SampleUser({}, rng, &record, /*greedy=*/true);
  EXPECT_EQ(user % 4, 3U);
}

TEST_F(PolicyFixture, CraftingGreedyPicksArgmax) {
  util::Rng init_rng(testhelpers::TestSeed(43));
  CraftingPolicy policy(&users_, &items_, CraftingPolicy::Config{},
                        init_rng);
  policy.SetTargetItem(1);
  util::Rng rng_a(testhelpers::TestSeed(1)), rng_b(testhelpers::TestSeed(2));
  CraftStepRecord ra, rb;
  EXPECT_EQ(policy.SampleLevel(3, rng_a, &ra, /*greedy=*/true),
            policy.SampleLevel(3, rng_b, &rb, /*greedy=*/true));
}

}  // namespace
}  // namespace copyattack::core

namespace copyattack::core {
namespace {

TEST_F(PolicyFixture, GruEncoderVariantWorksEndToEnd) {
  util::Rng init_rng(testhelpers::TestSeed(9));
  HierarchicalSelectionPolicy::Config config;
  config.encoder = SequenceEncoderType::kGru;
  HierarchicalSelectionPolicy policy(&tree_, &users_, &items_, config,
                                     init_rng);
  policy.SetTargetItem(0, MaskForItem(0));
  util::Rng rng(testhelpers::TestSeed(19));
  SelectionStepRecord record;
  const data::UserId user = policy.SampleUser({1, 5}, rng, &record);
  EXPECT_EQ(user % 4, 0U);

  // A positive-advantage update must not crash and must raise the chosen
  // user's probability, as with the vanilla encoder.
  auto frequency = [&](util::Rng& sample_rng) {
    int hits = 0;
    for (int i = 0; i < 300; ++i) {
      SelectionStepRecord r;
      if (policy.SampleUser({1, 5}, sample_rng, &r) == user) ++hits;
    }
    return hits / 300.0;
  };
  util::Rng freq_a(testhelpers::TestSeed(23));
  const double before = frequency(freq_a);
  for (int i = 0; i < 10; ++i) {
    policy.AccumulateGradients(record, 1.0);
    policy.ApplyUpdates(0.2f, 0.0f);
  }
  util::Rng freq_b(testhelpers::TestSeed(23));
  const double after = frequency(freq_b);
  EXPECT_GT(after, before - 0.02);
}

}  // namespace
}  // namespace copyattack::core
