#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/crafting.h"
#include "defense/adaptive_detector.h"
#include "defense/detectors.h"
#include "defense/profile_features.h"
#include "rec/matrix_factorization.h"
#include "test_helpers.h"
#include "test_seed.h"

namespace copyattack::defense {
namespace {

using testhelpers::SharedTinyWorld;

/// Fixture: extractor over the tiny world's target domain plus MF item
/// embeddings.
class DefenseFixture : public ::testing::Test {
 protected:
  DefenseFixture() {
    const auto& tw = SharedTinyWorld();
    util::Rng rng(testhelpers::TestSeed(3));
    mf_.Fit(tw.world.dataset.target, 10, rng);
    extractor_ = std::make_unique<ProfileFeatureExtractor>(
        &tw.world.dataset.target, &mf_.item_embeddings());
  }

  std::vector<ProfileFeatures> RealFeatures(std::size_t count) {
    const auto& tw = SharedTinyWorld();
    util::Rng rng(testhelpers::TestSeed(5));
    std::vector<ProfileFeatures> features;
    for (std::size_t i = 0; i < count; ++i) {
      const data::UserId u = static_cast<data::UserId>(
          rng.UniformUint64(tw.world.dataset.target.num_users()));
      features.push_back(extractor_->Extract(
          tw.world.dataset.target.UserProfile(u), rng));
    }
    return features;
  }

  /// Fabricated shilling profiles: the target plus random filler.
  std::vector<ProfileFeatures> FabricatedFeatures(std::size_t count) {
    const auto& tw = SharedTinyWorld();
    util::Rng rng(testhelpers::TestSeed(7));
    std::vector<ProfileFeatures> features;
    for (std::size_t i = 0; i < count; ++i) {
      data::Profile fake = {tw.cold_target};
      while (fake.size() < 15) {
        const data::ItemId item = static_cast<data::ItemId>(
            rng.UniformUint64(tw.world.dataset.target.num_items()));
        bool dup = false;
        for (const data::ItemId existing : fake) {
          dup = dup || existing == item;
        }
        if (!dup) fake.push_back(item);
      }
      features.push_back(extractor_->Extract(fake, rng));
    }
    return features;
  }

  /// CopyAttack-style profiles: crafted windows of real source holders.
  std::vector<ProfileFeatures> CopiedFeatures() {
    const auto& tw = SharedTinyWorld();
    util::Rng rng(testhelpers::TestSeed(9));
    std::vector<ProfileFeatures> features;
    for (const data::ItemId item : tw.world.dataset.OverlapItems()) {
      for (const data::UserId holder : tw.world.dataset.SourceHolders(item)) {
        if (features.size() >= 80) return features;
        features.push_back(extractor_->Extract(
            core::ClipProfileAroundTarget(
                tw.world.dataset.source.UserProfile(holder), item, 0.5),
            rng));
      }
    }
    return features;
  }

  rec::MatrixFactorization mf_;
  std::unique_ptr<ProfileFeatureExtractor> extractor_;
};

TEST_F(DefenseFixture, FeatureNamesExist) {
  for (std::size_t i = 0; i < kNumProfileFeatures; ++i) {
    EXPECT_NE(ProfileFeatureName(i), nullptr);
  }
}

TEST_F(DefenseFixture, FeaturesAreFinite) {
  for (const ProfileFeatures& f : RealFeatures(30)) {
    for (const double v : f) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST_F(DefenseFixture, SingleItemProfileFeatures) {
  util::Rng rng(testhelpers::TestSeed(11));
  const ProfileFeatures f = extractor_->Extract({0}, rng);
  EXPECT_DOUBLE_EQ(f[0], 0.0);  // log length of 1
  EXPECT_DOUBLE_EQ(f[3], 1.0);  // coherence of a singleton is perfect
  EXPECT_DOUBLE_EQ(f[5], 0.0);  // no dispersion
}

TEST(RocAucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(RocAuc({0.0, 0.1, 0.2}, {1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({1.0, 2.0}, {0.0, 0.1}), 0.0);
}

TEST(RocAucTest, IdenticalDistributionsGiveHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 0.5);
}

TEST(RocAucTest, TiesCountHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({1.0}, {1.0}), 0.5);
}

TEST_F(DefenseFixture, ZScoreFlagsFabricatedProfiles) {
  const auto real = RealFeatures(80);
  const auto fake = FabricatedFeatures(60);
  ZScoreDetector detector;
  detector.Fit(real);
  const DetectionReport report = EvaluateDetector(detector, real, fake);
  EXPECT_GT(report.auc, 0.75)
      << "fabricated shilling profiles must be clearly detectable";
}

TEST_F(DefenseFixture, CopiedProfilesEvadeDetectionBetter) {
  const auto real = RealFeatures(80);
  const auto fake = FabricatedFeatures(60);
  const auto copied = CopiedFeatures();
  ASSERT_GE(copied.size(), 20U);

  ZScoreDetector detector;
  detector.Fit(real);
  const DetectionReport fake_report = EvaluateDetector(detector, real, fake);
  const DetectionReport copied_report =
      EvaluateDetector(detector, real, copied);
  // The paper's core premise: copied real profiles look far more genuine
  // than fabricated ones.
  EXPECT_LT(copied_report.auc, fake_report.auc - 0.1);
}

TEST_F(DefenseFixture, KnnDetectorAlsoSeparatesFabricated) {
  const auto real = RealFeatures(80);
  const auto fake = FabricatedFeatures(60);
  KnnDetector detector(5);
  detector.Fit(real);
  const DetectionReport report = EvaluateDetector(detector, real, fake);
  EXPECT_GT(report.auc, 0.7);
}

TEST_F(DefenseFixture, RecallRespectsFprBudget) {
  const auto real = RealFeatures(100);
  ZScoreDetector detector;
  detector.Fit(real);
  // Evaluating genuine vs genuine: recall at 5% FPR should be near 5%.
  const DetectionReport report =
      EvaluateDetector(detector, real, RealFeatures(100), 0.05);
  EXPECT_LT(report.recall_at_fpr, 0.25);
}

TEST(DetectorDeathTest, ScoreBeforeFitAborts) {
  ZScoreDetector detector;
  ProfileFeatures f{};
  EXPECT_DEATH(detector.Score(f), "Fit must be called");
}

TEST_F(DefenseFixture, AdaptiveDetectorSeparatesItsTrainingAttacker) {
  const auto real = RealFeatures(80);
  const auto fake = FabricatedFeatures(60);
  // Train on one half of the attack profiles, evaluate on the other —
  // the arms-race protocol, so the detector is never scored on rows it
  // trained on.
  std::vector<ProfileFeatures> fit_half, eval_half;
  for (std::size_t i = 0; i < fake.size(); ++i) {
    (i % 2 == 0 ? fit_half : eval_half).push_back(fake[i]);
  }
  AdaptiveDetector adaptive;
  adaptive.FitAdaptive(real, fit_half);
  EXPECT_TRUE(adaptive.supervised());

  const DetectionReport supervised_report =
      EvaluateDetector(adaptive, real, eval_half);
  ZScoreDetector zscore;
  zscore.Fit(real);
  const DetectionReport zscore_report =
      EvaluateDetector(zscore, real, eval_half);
  // Retraining on the attacker's own profiles must not LOSE separability
  // relative to the unsupervised baseline (the defender's second move).
  EXPECT_GT(supervised_report.auc, 0.75);
  EXPECT_GE(supervised_report.auc, zscore_report.auc - 0.05);
}

TEST_F(DefenseFixture, AdaptiveDetectorFitIsDeterministic) {
  const auto real = RealFeatures(60);
  const auto fake = FabricatedFeatures(40);
  AdaptiveDetector a, b;
  a.FitAdaptive(real, fake);
  b.FitAdaptive(real, fake);
  ASSERT_EQ(a.weights().size(), b.weights().size());
  for (std::size_t i = 0; i < a.weights().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.weights()[i], b.weights()[i]);
  }
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST_F(DefenseFixture, AdaptiveDetectorFallsBackToUnsupervised) {
  const auto real = RealFeatures(80);
  AdaptiveDetector adaptive;
  adaptive.Fit(real);  // no attack profiles yet: z-score semantics
  EXPECT_FALSE(adaptive.supervised());
  const auto fake = FabricatedFeatures(40);
  ZScoreDetector zscore;
  zscore.Fit(real);
  const DetectionReport fallback = EvaluateDetector(adaptive, real, fake);
  const DetectionReport baseline = EvaluateDetector(zscore, real, fake);
  EXPECT_DOUBLE_EQ(fallback.auc, baseline.auc);
}

TEST(AdaptiveDetectorDeathTest, ScoreBeforeFitAborts) {
  AdaptiveDetector detector;
  ProfileFeatures f{};
  EXPECT_DEATH(detector.Score(f), "Fit");
}

}  // namespace
}  // namespace copyattack::defense
