#ifndef COPYATTACK_TESTS_TEST_SEED_H_
#define COPYATTACK_TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace copyattack::testhelpers {

namespace internal_seed {

/// splitmix64 finalizer — decorrelates the override from the per-site base
/// so two call sites with different bases stay on distinct streams.
inline std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Parses COPYATTACK_TEST_SEED once per process. Unset, empty, or "0" all
/// mean "no override" — the default run must stay bit-identical to the
/// seeds hard-coded at each call site.
inline std::uint64_t OverrideSeed() {
  static const std::uint64_t value = [] {
    const char* raw = std::getenv("COPYATTACK_TEST_SEED");
    if (raw == nullptr || raw[0] == '\0') return std::uint64_t{0};
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') {
      std::fprintf(stderr,
                   "COPYATTACK_TEST_SEED=%s is not an unsigned integer; "
                   "ignoring override\n",
                   raw);
      return std::uint64_t{0};
    }
    if (parsed != 0) {
      std::fprintf(stderr, "COPYATTACK_TEST_SEED=%llu (stochastic tests "
                           "reseeded)\n",
                   parsed);
    }
    return static_cast<std::uint64_t>(parsed);
  }();
  return value;
}

}  // namespace internal_seed

/// Seed for a stochastic test. Returns `base_seed` unchanged by default so
/// the suite is deterministic; when the COPYATTACK_TEST_SEED env var is set
/// to a nonzero integer (sanitizer runs fuzzing seed-dependent paths), every
/// call site is re-derived from it while distinct bases remain distinct.
inline std::uint64_t TestSeed(std::uint64_t base_seed) {
  const std::uint64_t override_seed = internal_seed::OverrideSeed();
  if (override_seed == 0) return base_seed;
  return internal_seed::Mix(override_seed ^ internal_seed::Mix(base_seed));
}

/// True when COPYATTACK_TEST_SEED is active. Statistical-ordering tests
/// (method A beats method B on the tiny world) are only guaranteed for the
/// controlled default configuration and should GTEST_SKIP when this
/// returns true; hard invariants must NOT consult it.
inline bool SeedOverrideActive() {
  return internal_seed::OverrideSeed() != 0;
}

}  // namespace copyattack::testhelpers

#endif  // COPYATTACK_TESTS_TEST_SEED_H_
