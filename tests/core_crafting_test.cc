#include <algorithm>

#include <gtest/gtest.h>

#include "core/crafting.h"

namespace copyattack::core {
namespace {

using data::ItemId;
using data::Profile;

TEST(CraftingTest, PaperExampleFiftyPercent) {
  // The exact example from §4.4: a 10-item profile with the target at
  // position 4 (v5), clipped at 50%, keeps {v3, v4, v5*, v6, v7}.
  const Profile profile = {1, 2, 3, 4, 50, 6, 7, 8, 9, 10};
  const Profile crafted = ClipProfileAroundTarget(profile, 50, 0.5);
  EXPECT_EQ(crafted, (Profile{3, 4, 50, 6, 7}));
}

TEST(CraftingTest, FullFractionKeepsEverything) {
  const Profile profile = {1, 2, 3, 4, 5};
  EXPECT_EQ(ClipProfileAroundTarget(profile, 3, 1.0), profile);
}

TEST(CraftingTest, TinyFractionKeepsAtLeastTarget) {
  const Profile profile = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const Profile crafted = ClipProfileAroundTarget(profile, 7, 0.1);
  ASSERT_EQ(crafted.size(), 1U);
  EXPECT_EQ(crafted[0], 7U);
}

TEST(CraftingTest, TargetAtStartShiftsWindowRight) {
  const Profile profile = {9, 1, 2, 3, 4, 5, 6, 7};
  const Profile crafted = ClipProfileAroundTarget(profile, 9, 0.5);
  EXPECT_EQ(crafted.size(), 4U);
  EXPECT_EQ(crafted.front(), 9U);
  // Window must be contiguous from the start.
  EXPECT_EQ(crafted, (Profile{9, 1, 2, 3}));
}

TEST(CraftingTest, TargetAtEndShiftsWindowLeft) {
  const Profile profile = {1, 2, 3, 4, 5, 6, 7, 9};
  const Profile crafted = ClipProfileAroundTarget(profile, 9, 0.5);
  EXPECT_EQ(crafted, (Profile{5, 6, 7, 9}));
}

TEST(CraftingTest, SingleItemProfile) {
  const Profile profile = {42};
  EXPECT_EQ(ClipProfileAroundTarget(profile, 42, 0.1), profile);
  EXPECT_EQ(ClipProfileAroundTarget(profile, 42, 1.0), profile);
}

TEST(CraftingTest, MissingTargetCentersOnMiddle) {
  const Profile profile = {1, 2, 3, 4, 5, 6};
  const Profile crafted = ClipProfileAroundTarget(profile, 99, 0.5);
  EXPECT_EQ(crafted.size(), 3U);
  // Centered on index 3 -> {3, 4, 5}.
  EXPECT_EQ(crafted, (Profile{3, 4, 5}));
}

TEST(CraftingTest, WindowLengthRounding) {
  EXPECT_EQ(CraftWindowLength(10, 0.5), 5U);
  EXPECT_EQ(CraftWindowLength(10, 0.05), 1U);
  EXPECT_EQ(CraftWindowLength(10, 1.0), 10U);
  EXPECT_EQ(CraftWindowLength(3, 0.5), 2U);   // 1.5 rounds to 2
  EXPECT_EQ(CraftWindowLength(1, 0.1), 1U);
}

TEST(CraftingTest, CraftLevelsCoverTenPercentSteps) {
  ASSERT_EQ(kNumCraftLevels, 10U);
  for (std::size_t i = 0; i < kNumCraftLevels; ++i) {
    EXPECT_DOUBLE_EQ(kCraftLevels[i], 0.1 * static_cast<double>(i + 1));
  }
}

/// Property sweep over (profile length, target position, level): the
/// crafted profile is always a contiguous subsequence containing the
/// target with the expected length.
struct CraftCase {
  std::size_t length;
  std::size_t target_pos;
  std::size_t level;
};

class CraftingProperty : public ::testing::TestWithParam<CraftCase> {};

TEST_P(CraftingProperty, WindowInvariants) {
  const CraftCase c = GetParam();
  Profile profile(c.length);
  for (std::size_t i = 0; i < c.length; ++i) {
    profile[i] = static_cast<ItemId>(i + 100);
  }
  const ItemId target = profile[c.target_pos];
  const double fraction = kCraftLevels[c.level];
  const Profile crafted = ClipProfileAroundTarget(profile, target, fraction);

  // Expected length.
  EXPECT_EQ(crafted.size(), CraftWindowLength(c.length, fraction));
  // Contains the target.
  EXPECT_NE(std::find(crafted.begin(), crafted.end(), target),
            crafted.end());
  // Contiguous subsequence of the original.
  const auto begin_it =
      std::find(profile.begin(), profile.end(), crafted.front());
  ASSERT_NE(begin_it, profile.end());
  const std::size_t offset =
      static_cast<std::size_t>(begin_it - profile.begin());
  for (std::size_t i = 0; i < crafted.size(); ++i) {
    EXPECT_EQ(crafted[i], profile[offset + i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CraftingProperty,
    ::testing::Values(CraftCase{1, 0, 0}, CraftCase{2, 0, 0},
                      CraftCase{2, 1, 9}, CraftCase{5, 0, 4},
                      CraftCase{5, 4, 4}, CraftCase{10, 4, 4},
                      CraftCase{10, 0, 2}, CraftCase{10, 9, 2},
                      CraftCase{17, 8, 6}, CraftCase{33, 1, 3},
                      CraftCase{33, 31, 7}, CraftCase{100, 50, 0},
                      CraftCase{100, 99, 9}));

}  // namespace
}  // namespace copyattack::core
