// Equivalence tests for the episode snapshot/rollback fast path: an
// AttackEnvironment reused across Reset/Step cycles must produce
// bit-identical rewards and promotion metrics to a freshly constructed
// environment replaying the same episode — for every target-model family.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/environment.h"
#include "rec/item_knn.h"
#include "rec/matrix_factorization.h"
#include "rec/pinsage_lite.h"
#include "test_helpers.h"
#include "test_seed.h"

namespace copyattack::core {
namespace {

using testhelpers::SharedTinyWorld;

EnvConfig RollbackEnvConfig() {
  EnvConfig config;
  config.budget = 6;
  config.query_interval = 2;
  config.num_pretend_users = 10;
  config.reward_k = 20;
  config.query_candidates = 50;
  config.seed = 7;
  return config;
}

/// The fixed injection sequence of one episode for `target`.
std::vector<data::Profile> EpisodeProfiles(data::ItemId target) {
  const auto& tw = SharedTinyWorld();
  const auto& holders = tw.world.dataset.SourceHolders(target);
  std::vector<data::Profile> profiles;
  for (std::size_t i = 0; i < 6 && i < holders.size(); ++i) {
    profiles.push_back(tw.world.dataset.source.UserProfile(holders[i % holders.size()]));
  }
  while (profiles.size() < 6) {
    profiles.push_back(profiles.empty() ? data::Profile{0, 1, 2}
                                        : profiles.back());
  }
  return profiles;
}

/// Everything observable about one episode, captured bit-exactly.
struct EpisodeTrace {
  std::vector<double> step_rewards;
  double final_reward = 0.0;
  double hr20 = 0.0;
  double ndcg20 = 0.0;
  double hr10 = 0.0;
  double ndcg10 = 0.0;
};

EpisodeTrace PlayEpisode(AttackEnvironment& env, data::ItemId target) {
  env.Reset(target);
  EpisodeTrace trace;
  for (const data::Profile& profile : EpisodeProfiles(target)) {
    if (env.done()) break;
    const auto result = env.Step(data::Profile(profile));
    if (result.queried) trace.step_rewards.push_back(result.reward);
  }
  trace.final_reward = env.QueryReward();
  const auto metrics = env.EvaluateRealPromotion({20, 10}, 40, 40);
  trace.hr20 = metrics.at(20).hr;
  trace.ndcg20 = metrics.at(20).ndcg;
  trace.hr10 = metrics.at(10).hr;
  trace.ndcg10 = metrics.at(10).ndcg;
  return trace;
}

void ExpectIdentical(const EpisodeTrace& a, const EpisodeTrace& b) {
  ASSERT_EQ(a.step_rewards.size(), b.step_rewards.size());
  for (std::size_t i = 0; i < a.step_rewards.size(); ++i) {
    // EXPECT_EQ, not EXPECT_NEAR: rollback must be bit-identical.
    EXPECT_EQ(a.step_rewards[i], b.step_rewards[i]) << "step " << i;
  }
  EXPECT_EQ(a.final_reward, b.final_reward);
  EXPECT_EQ(a.hr20, b.hr20);
  EXPECT_EQ(a.ndcg20, b.ndcg20);
  EXPECT_EQ(a.hr10, b.hr10);
  EXPECT_EQ(a.ndcg10, b.ndcg10);
}

/// Runs `episodes` Reset/Step cycles on one long-lived environment and
/// checks each against a freshly constructed environment + model.
template <typename Model>
void CheckRollbackEquivalence(const Model& prototype, std::size_t episodes) {
  const auto& tw = SharedTinyWorld();
  const data::ItemId target = tw.cold_target;

  Model reused_model = prototype;
  AttackEnvironment reused_env(tw.world.dataset, tw.split.train,
                               &reused_model, RollbackEnvConfig());
  for (std::size_t episode = 0; episode < episodes; ++episode) {
    const EpisodeTrace reused = PlayEpisode(reused_env, target);

    Model fresh_model = prototype;
    AttackEnvironment fresh_env(tw.world.dataset, tw.split.train,
                                &fresh_model, RollbackEnvConfig());
    const EpisodeTrace fresh = PlayEpisode(fresh_env, target);
    ExpectIdentical(reused, fresh);
  }
  // The reused environment must actually have exercised the fast path
  // (first reset builds, later resets roll back).
  EXPECT_EQ(reused_env.fast_resets(), episodes - 1);
}

TEST(RollbackEquivalenceTest, PinSageEpisodesMatchFreshEnvironment) {
  CheckRollbackEquivalence(SharedTinyWorld().model, 4);
}

TEST(RollbackEquivalenceTest, MatrixFactorizationEpisodesMatchFresh) {
  rec::MatrixFactorization prototype;
  util::Rng rng(testhelpers::TestSeed(29));
  prototype.Fit(SharedTinyWorld().split.train, 6, rng);
  CheckRollbackEquivalence(prototype, 4);
}

TEST(RollbackEquivalenceTest, ItemKnnEpisodesMatchFresh) {
  rec::ItemKnn prototype;
  util::Rng rng(testhelpers::TestSeed(29));
  prototype.Fit(SharedTinyWorld().split.train, 1, rng);
  CheckRollbackEquivalence(prototype, 3);
}

TEST(RollbackEquivalenceTest, TargetSwitchRebuildsAndStaysConsistent) {
  // Alternating target items forces the slow path on every switch and the
  // fast path on repeats; both must keep matching fresh environments.
  const auto& tw = SharedTinyWorld();
  util::Rng rng(testhelpers::TestSeed(17));
  const auto targets = data::SampleColdTargetItems(tw.world.dataset, 2, 10, rng);
  ASSERT_GE(targets.size(), 2U);

  rec::PinSageLite reused_model = tw.model;
  AttackEnvironment reused_env(tw.world.dataset, tw.split.train,
                               &reused_model, RollbackEnvConfig());
  const data::ItemId sequence[] = {targets[0], targets[0], targets[1],
                                   targets[0], targets[1], targets[1]};
  for (const data::ItemId target : sequence) {
    const EpisodeTrace reused = PlayEpisode(reused_env, target);

    rec::PinSageLite fresh_model = tw.model;
    AttackEnvironment fresh_env(tw.world.dataset, tw.split.train,
                                &fresh_model, RollbackEnvConfig());
    const EpisodeTrace fresh = PlayEpisode(fresh_env, target);
    ExpectIdentical(reused, fresh);
  }
  // Reset 1 builds cold, resets 3-5 rebuild on a target switch; only the
  // two same-target repeats (resets 2 and 6) take the fast path.
  EXPECT_EQ(reused_env.fast_resets(), 2U);
}

TEST(RollbackEquivalenceTest, RefitOnQueryFallsBackToRebuild) {
  // With refit_on_query the model trains inside episodes, which must
  // invalidate serving checkpoints (the fast path would otherwise serve
  // stale embeddings). Behaviour matches the pre-rollback implementation:
  // the model keeps evolving across episodes, every reset rebuilds.
  const auto& tw = SharedTinyWorld();
  rec::MatrixFactorization model;
  util::Rng rng(testhelpers::TestSeed(29));
  model.Fit(tw.split.train, 6, rng);

  EnvConfig config = RollbackEnvConfig();
  config.refit_on_query = true;
  config.refit_epochs = 1;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model, config);
  for (int episode = 0; episode < 3; ++episode) {
    PlayEpisode(env, tw.cold_target);
  }
  EXPECT_EQ(env.fast_resets(), 0U);
}

}  // namespace
}  // namespace copyattack::core
