// Unit tests for the copyattack-analyze C++ tokenizer
// (tools/analyze/tokenizer.h): the translation-phase cases that the
// regex-era linter misread — raw strings, line splices, CRLF files, block
// comments spanning would-be rule matches — plus the blanked per-line view
// the migrated linter matches against, the scope scanner, and the
// layers.toml parser.

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analysis.h"
#include "analyze/callgraph.h"
#include "analyze/layers.h"
#include "analyze/report.h"
#include "analyze/structure.h"
#include "analyze/tokenizer.h"
#include "gtest/gtest.h"

namespace copyattack::analyze {
namespace {

std::vector<std::string> IdentifierTexts(const LexedFile& lexed) {
  std::vector<std::string> out;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kIdentifier) out.push_back(token.text);
  }
  return out;
}

bool HasIdentifier(const LexedFile& lexed, const std::string& text) {
  const std::vector<std::string> idents = IdentifierTexts(lexed);
  return std::find(idents.begin(), idents.end(), text) != idents.end();
}

TEST(TokenizerTest, RawStringBodyIsOpaque) {
  const LexedFile lexed = LexString(
      "raw.cc",
      "const char* s = R\"(std::rand() time(nullptr) \"quoted\")\";\n"
      "int after = 1;\n");
  ASSERT_TRUE(lexed.errors.empty());
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
  EXPECT_FALSE(HasIdentifier(lexed, "time"));
  EXPECT_TRUE(HasIdentifier(lexed, "after"));
  // The blanked view keeps only the delimiting quotes of the literal.
  EXPECT_EQ(lexed.code_lines[0].find("rand"), std::string::npos);
  EXPECT_NE(lexed.code_lines[0].find("const char* s = R\""),
            std::string::npos);
}

TEST(TokenizerTest, RawStringCustomDelimiterSurvivesQuoteParen) {
  // `")` inside the body must not terminate a d-char-seq raw string.
  const LexedFile lexed = LexString(
      "raw.cc",
      "const char* s = R\"doc(embedded \") quote-paren new delete)doc\";\n"
      "int tail = 2;\n");
  ASSERT_TRUE(lexed.errors.empty());
  EXPECT_FALSE(HasIdentifier(lexed, "new"));
  EXPECT_TRUE(HasIdentifier(lexed, "tail"));
}

TEST(TokenizerTest, MultiLineRawStringKeepsLineNumbers) {
  const LexedFile lexed = LexString("raw.cc",
                                    "auto s = R\"(line one\n"
                                    "line two\n"
                                    "line three)\";\n"
                                    "int marker = 3;\n");
  ASSERT_TRUE(lexed.errors.empty());
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kIdentifier && token.text == "marker") {
      EXPECT_EQ(token.line, 4u);
    }
    if (token.kind == TokenKind::kString) {
      EXPECT_EQ(token.line, 1u);  // reported at its opening quote
    }
  }
}

TEST(TokenizerTest, UnterminatedRawStringIsAnError) {
  const LexedFile lexed =
      LexString("raw.cc", "auto s = R\"(never closed\nmore\n");
  ASSERT_FALSE(lexed.errors.empty());
}

TEST(TokenizerTest, LineSpliceJoinsLogicalLine) {
  // The identifier is split across physical lines by a backslash-newline;
  // phase-2 splicing must reassemble it.
  const LexedFile lexed = LexString("splice.cc", "int spli\\\nced = 0;\n");
  EXPECT_TRUE(HasIdentifier(lexed, "spliced"));
  EXPECT_FALSE(HasIdentifier(lexed, "spli"));
}

TEST(TokenizerTest, SplicedLineCommentSwallowsContinuation) {
  const LexedFile lexed = LexString("splice.cc",
                                    "// comment continues \\\n"
                                    "std::rand() on this line too\n"
                                    "int live = 1;\n");
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
  EXPECT_TRUE(HasIdentifier(lexed, "live"));
  ASSERT_EQ(lexed.comments.size(), 1u);
  EXPECT_EQ(lexed.comments[0].line_begin, 1u);
  EXPECT_EQ(lexed.comments[0].line_end, 2u);
}

TEST(TokenizerTest, CrlfIsNormalized) {
  const LexedFile lexed =
      LexString("crlf.cc", "int a = 1;\r\nint b = 2;\r\nint c = 3;\r\n");
  ASSERT_EQ(lexed.code_lines.size(), 4u);  // 3 lines + empty tail
  EXPECT_EQ(lexed.code_lines[1], "int b = 2;");
  for (const Token& token : lexed.tokens) {
    if (token.text == "c") {
      EXPECT_EQ(token.line, 3u);
    }
  }
}

TEST(TokenizerTest, BlockCommentSpanningRuleMatchIsBlanked) {
  const LexedFile lexed = LexString("block.cc",
                                    "int before = 0; /* std::rand()\n"
                                    "time(nullptr) still commented\n"
                                    "*/ int after = 1;\n");
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
  EXPECT_FALSE(HasIdentifier(lexed, "time"));
  EXPECT_TRUE(HasIdentifier(lexed, "before"));
  EXPECT_TRUE(HasIdentifier(lexed, "after"));
  // Middle line of the blanked view is all comment, hence all spaces.
  EXPECT_EQ(lexed.code_lines[1].find_first_not_of(' '), std::string::npos);
  ASSERT_EQ(lexed.comments.size(), 1u);
  EXPECT_EQ(lexed.comments[0].line_begin, 1u);
  EXPECT_EQ(lexed.comments[0].line_end, 3u);
}

TEST(TokenizerTest, DigitSeparatorsStayNumeric) {
  // The regex-era stripper treated `'` as a char-literal quote and blanked
  // the rest of the line after 1'000'000.
  const LexedFile lexed =
      LexString("num.cc", "long n = 1'000'000; int visible = 9;\n");
  EXPECT_TRUE(HasIdentifier(lexed, "visible"));
  bool found_number = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kNumber && token.text == "1'000'000") {
      found_number = true;
    }
  }
  EXPECT_TRUE(found_number);
  EXPECT_NE(lexed.code_lines[0].find("visible"), std::string::npos);
}

TEST(TokenizerTest, EncodingPrefixedLiteralsAreStrings) {
  const LexedFile lexed = LexString(
      "pfx.cc", "auto a = u8\"x new y\"; auto b = L\"delete\"; auto c = "
                "u'q'; auto d = U\"rand\";\n");
  EXPECT_FALSE(HasIdentifier(lexed, "new"));
  EXPECT_FALSE(HasIdentifier(lexed, "delete"));
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
  // u8/L/U must not survive as identifiers glued to the literal.
  EXPECT_FALSE(HasIdentifier(lexed, "u8"));
}

TEST(TokenizerTest, IncludePathsBecomeDedicatedTokens) {
  const LexedFile lexed = LexString("inc.cc",
                                    "#include \"util/rng.h\"\n"
                                    "#include <vector>\n");
  std::vector<const Token*> paths;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kIncludePath) paths.push_back(&token);
  }
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0]->text, "util/rng.h");
  EXPECT_FALSE(paths[0]->angled);
  EXPECT_EQ(paths[1]->text, "vector");
  EXPECT_TRUE(paths[1]->angled);
  // Quoted path bodies are blanked like strings; the directive skeleton
  // stays for the header-guard rule.
  EXPECT_EQ(lexed.code_lines[0].find("util"), std::string::npos);
  EXPECT_NE(lexed.code_lines[0].find("#include"), std::string::npos);
}

TEST(TokenizerTest, DirectiveTokensAreMarked) {
  const LexedFile lexed = LexString("def.cc",
                                    "#define HELPER(x) do { (x); } while (0)\n"
                                    "int normal = 0;\n");
  for (const Token& token : lexed.tokens) {
    if (token.line == 1) {
      EXPECT_TRUE(token.in_directive) << token.text;
    }
    if (token.text == "normal") {
      EXPECT_FALSE(token.in_directive);
    }
  }
}

TEST(TokenizerTest, AllowanceAppliesToSpannedAndNextLine) {
  const LexedFile lexed = LexString("allow.cc",
                                    "int a = 1;\n"
                                    "// analyze:allow(some-rule) reason\n"
                                    "int b = 2;\n"
                                    "int c = 3;\n");
  EXPECT_TRUE(lexed.Allows(2, "analyze:allow", "some-rule"));
  EXPECT_TRUE(lexed.Allows(3, "analyze:allow", "some-rule"));
  EXPECT_FALSE(lexed.Allows(4, "analyze:allow", "some-rule"));
  EXPECT_FALSE(lexed.Allows(2, "lint:allow", "some-rule"));
}

TEST(TokenizerTest, Utf8BomIsStrippedBeforeLineOneDirective) {
  // Editors on some platforms prepend a BOM; without the strip the line-1
  // `#pragma once` would no longer start at column 0 and header-guard
  // detection (which anchors at the line start) would misread the file.
  const LexedFile lexed = LexString(
      "bom.h", "\xEF\xBB\xBF#pragma once\nint value = 1;\n");
  ASSERT_TRUE(lexed.errors.empty());
  EXPECT_EQ(lexed.code_lines[0], "#pragma once");
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens[0].kind, TokenKind::kDirective);
  EXPECT_EQ(lexed.tokens[0].text, "pragma");
  EXPECT_TRUE(HasIdentifier(lexed, "value"));
}

TEST(TokenizerTest, PragmaOnceAndHeaderGuardKeepDirectiveSkeleton) {
  // The header-guard rule decides `#pragma once` vs `#ifndef GUARD` from
  // the blanked code_lines view, so both spellings must survive blanking
  // verbatim and their tokens must be flagged in_directive.
  const LexedFile pragma_once =
      LexString("p.h", "#pragma once\nstruct P {};\n");
  EXPECT_EQ(pragma_once.code_lines[0].rfind("#pragma once", 0), 0u);

  const LexedFile guarded = LexString("g.h",
                                      "#ifndef COPYATTACK_G_H_\n"
                                      "#define COPYATTACK_G_H_\n"
                                      "struct G {};\n"
                                      "#endif  // COPYATTACK_G_H_\n");
  EXPECT_EQ(guarded.code_lines[0], "#ifndef COPYATTACK_G_H_");
  std::vector<std::string> directives;
  for (const Token& token : guarded.tokens) {
    if (token.kind == TokenKind::kDirective) directives.push_back(token.text);
    if (token.text == "COPYATTACK_G_H_") {
      EXPECT_TRUE(token.in_directive);
    }
  }
  EXPECT_EQ(directives,
            (std::vector<std::string>{"ifndef", "define", "endif"}));
}

TEST(TokenizerTest, NestedRawStringsInsideMacroArgumentsStayOpaque) {
  // Two raw-string arguments of one macro invocation, with parens, quotes
  // and a `")`-lookalike inside the bodies: the closing delimiter of the
  // first must not be found inside the second, and nothing inside either
  // body may surface as an identifier.
  const LexedFile lexed = LexString(
      "macro.cc",
      "CHECK_ROUNDTRIP(R\"a(first (nested \"quoted\") std::rand())a\",\n"
      "                R\"b(second \") quote-paren time(nullptr))b\");\n"
      "int after_macro = 7;\n");
  ASSERT_TRUE(lexed.errors.empty());
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
  EXPECT_FALSE(HasIdentifier(lexed, "time"));
  EXPECT_FALSE(HasIdentifier(lexed, "nested"));
  EXPECT_TRUE(HasIdentifier(lexed, "CHECK_ROUNDTRIP"));
  EXPECT_TRUE(HasIdentifier(lexed, "after_macro"));
  // Both literals lex as opaque strings on their own physical lines.
  std::size_t strings = 0;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kString) ++strings;
  }
  EXPECT_EQ(strings, 2u);
}

TEST(TokenizerTest, AnnotationSplitAcrossLineSpliceIsReassembled) {
  // A CA_* annotation macro name split by a backslash-newline must lex as
  // one identifier, and the scanner must still harvest the mutex-order
  // annotation from the reassembled head.
  const LexedFile lexed = LexString("splice.h",
                                    "class Recorder {\n"
                                    "  std::mutex mu_ CA_ACQUIRED_\\\n"
                                    "BEFORE(Buffer::mutex);\n"
                                    "};\n");
  ASSERT_TRUE(lexed.errors.empty());
  EXPECT_TRUE(HasIdentifier(lexed, "CA_ACQUIRED_BEFORE"));
  EXPECT_FALSE(HasIdentifier(lexed, "CA_ACQUIRED_"));
  const FileStructure structure = ScanStructure(lexed);
  ASSERT_EQ(structure.mutex_orders.size(), 1u);
  EXPECT_EQ(structure.mutex_orders[0].class_name, "Recorder");
  EXPECT_EQ(structure.mutex_orders[0].mutex_name, "mu_");
  ASSERT_EQ(structure.mutex_orders[0].before.size(), 1u);
  EXPECT_EQ(structure.mutex_orders[0].before[0], "Buffer::mutex");
}

TEST(ScannerTest, FindsOutOfClassMethodAndGuardedField) {
  const LexedFile lexed = LexString(
      "worker.cc",
      "class Worker {\n"
      " public:\n"
      "  void Tick();\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int count_ CA_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "void Worker::Tick() { std::lock_guard<std::mutex> l(mu_); ++count_; "
      "}\n");
  const FileStructure structure = ScanStructure(lexed);
  ASSERT_EQ(structure.fields.size(), 1u);
  EXPECT_EQ(structure.fields[0].class_name, "Worker");
  EXPECT_EQ(structure.fields[0].field_name, "count_");
  EXPECT_EQ(structure.fields[0].mutex_name, "mu_");
  ASSERT_EQ(structure.functions.size(), 1u);
  EXPECT_EQ(structure.functions[0].class_name, "Worker");
  EXPECT_EQ(structure.functions[0].name, "Tick");
  EXPECT_FALSE(structure.functions[0].is_ctor);
}

TEST(ScannerTest, ConstructorInitializerListIsNotABody) {
  const LexedFile lexed = LexString(
      "ctor.cc",
      "Histogram::Histogram(std::vector<double> bounds)\n"
      "    : bounds_(std::move(bounds)), shards_(16) {\n"
      "  total_ = 0;\n"
      "}\n");
  const FileStructure structure = ScanStructure(lexed);
  ASSERT_EQ(structure.functions.size(), 1u);
  EXPECT_TRUE(structure.functions[0].is_ctor);
  EXPECT_EQ(structure.functions[0].class_name, "Histogram");
}

TEST(ScannerTest, ExportsTypesAliasesEnumeratorsAndMacros) {
  const LexedFile lexed = LexString("exports.h",
                                    "#define MY_MACRO(x) (x)\n"
                                    "struct Tensor { int rank; };\n"
                                    "enum class Mode { kFast, kSafe };\n"
                                    "using Row = int;\n"
                                    "typedef double Scalar;\n"
                                    "inline int Clamp(int v) { return v; }\n");
  const FileStructure structure = ScanStructure(lexed);
  for (const char* name :
       {"MY_MACRO", "Tensor", "Mode", "kFast", "kSafe", "Row", "Scalar",
        "Clamp"}) {
    EXPECT_EQ(structure.exported.count(name), 1u) << name;
  }
}

TEST(ScannerTest, HarvestsCheckpointedTypeAndFields) {
  const LexedFile lexed = LexString(
      "snap.h",
      "struct Snapshot CA_CHECKPOINTED(WriteSnap, Owner::ReadSnap) {\n"
      "  std::uint64_t episodes = 0;\n"
      "  double reward = 0.0;\n"
      "  double scratch CA_NOT_CHECKPOINTED(\"per-step scratch\") = 0.0;\n"
      "};\n");
  const FileStructure structure = ScanStructure(lexed);
  ASSERT_EQ(structure.checkpointed_types.size(), 1u);
  const CheckpointedType& type = structure.checkpointed_types[0];
  EXPECT_EQ(type.class_name, "Snapshot");
  EXPECT_EQ(type.save_qualifier, "");
  EXPECT_EQ(type.save_name, "WriteSnap");
  EXPECT_EQ(type.load_qualifier, "Owner");
  EXPECT_EQ(type.load_name, "ReadSnap");
  ASSERT_EQ(structure.checkpoint_fields.size(), 3u);
  EXPECT_EQ(structure.checkpoint_fields[0].field_name, "episodes");
  EXPECT_FALSE(structure.checkpoint_fields[0].exempt);
  EXPECT_EQ(structure.checkpoint_fields[1].field_name, "reward");
  EXPECT_FALSE(structure.checkpoint_fields[1].exempt);
  EXPECT_EQ(structure.checkpoint_fields[2].field_name, "scratch");
  EXPECT_TRUE(structure.checkpoint_fields[2].exempt);
}

TEST(ScannerTest, CheckpointedWithEmptyArgsDefaultsToSaveLoadState) {
  const LexedFile lexed =
      LexString("s.h", "class Rng CA_CHECKPOINTED() {\n"
                       "  std::uint64_t state_ = 0;\n"
                       "};\n");
  const FileStructure structure = ScanStructure(lexed);
  ASSERT_EQ(structure.checkpointed_types.size(), 1u);
  EXPECT_EQ(structure.checkpointed_types[0].save_name, "SaveState");
  EXPECT_EQ(structure.checkpointed_types[0].load_name, "LoadState");
}

TEST(ScannerTest, InlineMethodBodiesDoNotLeakIntoFieldExtraction) {
  // Statements inside an inline method must not be misread as member
  // declarations of the checkpointed class.
  const LexedFile lexed = LexString(
      "m.h",
      "struct Baseline CA_CHECKPOINTED(Save, Load) {\n"
      "  double Update(double r) { double delta = r - value; return delta; }\n"
      "  double value = 0.0;\n"
      "};\n");
  const FileStructure structure = ScanStructure(lexed);
  ASSERT_EQ(structure.checkpoint_fields.size(), 1u);
  EXPECT_EQ(structure.checkpoint_fields[0].field_name, "value");
}

TEST(ScannerTest, ZeroArgAcquiredBeforeIsTrackedLeaf) {
  const LexedFile lexed =
      LexString("p.h", "class Pool {\n"
                       "  mutable std::mutex mutex_ CA_ACQUIRED_BEFORE();\n"
                       "};\n");
  const FileStructure structure = ScanStructure(lexed);
  ASSERT_EQ(structure.mutex_orders.size(), 1u);
  EXPECT_EQ(structure.mutex_orders[0].class_name, "Pool");
  EXPECT_EQ(structure.mutex_orders[0].mutex_name, "mutex_");
  EXPECT_TRUE(structure.mutex_orders[0].before.empty());
}

TEST(ReportTest, SarifEmitsRuleIdsAndLocations) {
  const std::vector<Violation> violations = {
      {"src/core/a.cc", 12, "ckpt-missing-member", "member 'x' missing"},
  };
  std::ostringstream out;
  EXPECT_EQ(ReportSarif(violations, out), 1u);
  const std::string sarif = out.str();
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"ckpt-missing-member\""),
            std::string::npos);
  EXPECT_NE(sarif.find("src/core/a.cc"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 12"), std::string::npos);
}

TEST(ReportTest, BaselineDiffSplitsFreshGrandfatheredAndStale) {
  Baseline baseline;
  baseline[BaselineKey({"a.cc", 1, "rule-x", "msg"})] = 1;
  baseline[BaselineKey({"gone.cc", 9, "rule-y", "fixed long ago"})] = 1;
  const std::vector<Violation> violations = {
      {"a.cc", 42, "rule-x", "msg"},        // line moved: still matches
      {"b.cc", 7, "rule-z", "brand new"},   // fresh
  };
  const BaselineDiff diff = DiffBaseline(violations, baseline);
  EXPECT_EQ(diff.grandfathered, 1u);
  ASSERT_EQ(diff.fresh.size(), 1u);
  EXPECT_EQ(diff.fresh[0].file, "b.cc");
  ASSERT_EQ(diff.stale.size(), 1u);
  EXPECT_NE(diff.stale[0].find("gone.cc"), std::string::npos);
}

TEST(LayersTest, ParsesContractAndValidatesEdges) {
  LayerContract contract;
  std::string error;
  ASSERT_TRUE(ParseLayerContract("# comment\n"
                                 "[modules]\n"
                                 "obs = []\n"
                                 "util = [\"obs\"]  # trailing comment\n"
                                 "[top]\n"
                                 "modules = [\"tools\"]\n"
                                 "[pure]\n"
                                 "headers = [\"src/util/annotations.h\"]\n",
                                 &contract, &error))
      << error;
  EXPECT_TRUE(contract.AllowsEdge("util", "obs"));
  EXPECT_FALSE(contract.AllowsEdge("obs", "util"));
  EXPECT_TRUE(contract.AllowsEdge("tools", "util"));
  // Pure entries are repo-relative paths, matched against rel_path.
  EXPECT_TRUE(contract.IsPureHeader("src/util/annotations.h"));
  EXPECT_FALSE(contract.IsPureHeader("util/annotations.h"));

  LayerContract bad;
  EXPECT_FALSE(ParseLayerContract("[modules]\nutil = [\"typo\"]\n", &bad,
                                  &error));
  EXPECT_NE(error.find("typo"), std::string::npos);
}

// ---- Call-expression tokenization (ISSUE 9) -------------------------------
// The call-graph builder keys off exact token shapes: `::` and `->` must
// stay single punct tokens, template argument lists must not swallow the
// call's `(`, and calls nested in macro arguments must still be visible.

std::vector<std::string> PunctTexts(const LexedFile& lexed) {
  std::vector<std::string> out;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kPunct) out.push_back(token.text);
  }
  return out;
}

TEST(TokenizerTest, QualifiedCallKeepsScopeResolutionAtomic) {
  const LexedFile lexed =
      LexString("call.cc", "int x = ns::Widget::Make(1);\n");
  const std::vector<std::string> punct = PunctTexts(lexed);
  // `::` lexes as one token, never `:` `:` — the builder walks back over
  // ident `::` pairs to recover the qualifier chain.
  EXPECT_EQ(std::count(punct.begin(), punct.end(), "::"), 2);
  EXPECT_EQ(std::count(punct.begin(), punct.end(), ":"), 0);
}

TEST(TokenizerTest, ArrowChainsLexAsSingleArrowTokens) {
  const LexedFile lexed =
      LexString("chain.cc", "auto v = a->b()->c(d->e);\n");
  const std::vector<std::string> punct = PunctTexts(lexed);
  EXPECT_EQ(std::count(punct.begin(), punct.end(), "->"), 3);
  // No stray `-` `>` pairs from mis-splitting the arrows.
  EXPECT_EQ(std::count(punct.begin(), punct.end(), "-"), 0);
}

TEST(TokenizerTest, AngleBracketsLexAsSingleCharTokens) {
  const LexedFile lexed = LexString(
      "tmpl.cc",
      "auto a = Make<int, 4>(x);\n"
      "auto b = total << Make(y);\n");
  const std::vector<std::string> punct = PunctTexts(lexed);
  // The lexer never fuses shifts: `<<` is `<` `<`. SkipTemplateArgs
  // relies on this — a shift expression's angles never balance, so it
  // cannot be mistaken for a template argument list.
  EXPECT_EQ(std::count(punct.begin(), punct.end(), "<<"), 0);
  EXPECT_EQ(std::count(punct.begin(), punct.end(), "<"), 3);
  EXPECT_EQ(std::count(punct.begin(), punct.end(), ">"), 1);
}

TEST(TokenizerTest, OperatorCallSpellingsAreVisible) {
  const LexedFile lexed = LexString(
      "op.cc",
      "int a = obj.operator()(1);\n"
      "bool eq = Lhs::operator==(l, r);\n");
  EXPECT_TRUE(HasIdentifier(lexed, "operator"));
  // `operator()` contributes its own paren pair plus the argument list's.
  const std::vector<std::string> punct = PunctTexts(lexed);
  EXPECT_GE(std::count(punct.begin(), punct.end(), "("), 3);
}

TEST(TokenizerTest, CallsInsideMacroArgumentsRemainVisible) {
  const LexedFile lexed = LexString(
      "macro.cc", "void F() { CA_CHECK(Validate(x)) << Render(y); }\n");
  // Macro names lex as plain identifiers; the nested calls keep their
  // `name (` shape for the extractor.
  EXPECT_TRUE(HasIdentifier(lexed, "CA_CHECK"));
  EXPECT_TRUE(HasIdentifier(lexed, "Validate"));
  EXPECT_TRUE(HasIdentifier(lexed, "Render"));
}

TEST(StructureTest, HotPathAnnotationsLandOnTheFunction) {
  const LexedFile lexed = LexString(
      "hot.cc",
      "float Score(int n) CA_HOT_PATH { return 1.0f; }\n"
      "void Rebuild() CA_COLD_OK(\"episode setup\") { }\n"
      "void Plain() { }\n");
  const FileStructure structure = ScanStructure(lexed);
  ASSERT_EQ(structure.functions.size(), 3u);
  EXPECT_TRUE(structure.functions[0].hot_path);
  EXPECT_FALSE(structure.functions[0].cold_ok);
  EXPECT_TRUE(structure.functions[1].cold_ok);
  EXPECT_FALSE(structure.functions[2].hot_path);
  EXPECT_FALSE(structure.functions[2].cold_ok);
}

TEST(StructureTest, RecordsDefinedClassesIncludingPureInterfaces) {
  const LexedFile lexed = LexString(
      "iface.h",
      "class Strategy {\n"
      " public:\n"
      "  virtual ~Strategy() = default;\n"
      "  virtual double Run(int episodes) = 0;\n"
      "};\n");
  const FileStructure structure = ScanStructure(lexed);
  EXPECT_EQ(structure.classes.count("Strategy"), 1u);
}

// ---- Call-graph construction (ISSUE 9) ------------------------------------

struct BuiltGraph {
  SourceTree tree;
  std::vector<FileStructure> structures;
  CallGraph graph;
};

BuiltGraph BuildFrom(
    const std::vector<std::pair<std::string, std::string>>& files) {
  BuiltGraph built;
  for (const auto& [path, content] : files) {
    built.tree.files.push_back({path, LexString(path, content)});
  }
  for (const ScannedFile& file : built.tree.files) {
    built.structures.push_back(ScanStructure(file.lexed));
  }
  built.graph = BuildCallGraph(built.tree, built.structures);
  return built;
}

std::size_t NodeByDisplay(const CallGraph& graph, const std::string& name) {
  for (std::size_t n = 0; n < graph.nodes.size(); ++n) {
    if (graph.Display(n) == name) return n;
  }
  return CallGraph::kNoNode;
}

bool HasEdge(const CallGraph& graph, const std::string& from,
             const std::string& to) {
  const std::size_t a = NodeByDisplay(graph, from);
  const std::size_t b = NodeByDisplay(graph, to);
  if (a == CallGraph::kNoNode || b == CallGraph::kNoNode) return false;
  const auto& out = graph.edges[a];
  return std::find(out.begin(), out.end(), b) != out.end();
}

TEST(CallGraphTest, ResolvesMemberCallsThroughTypedLocals) {
  const BuiltGraph built = BuildFrom({
      {"src/core/widget.h",
       "class Widget {\n"
       " public:\n"
       "  int Poke() { return 1; }\n"
       "};\n"},
      {"src/core/use.cc",
       "#include \"widget.h\"\n"
       "int Use() {\n"
       "  Widget w;\n"
       "  return w.Poke();\n"
       "}\n"},
  });
  EXPECT_TRUE(HasEdge(built.graph, "Use", "Widget::Poke"));
}

TEST(CallGraphTest, InterfaceReceiverFansOutToImplementations) {
  const BuiltGraph built = BuildFrom({
      {"src/core/strategy.h",
       "class Strategy {\n"
       " public:\n"
       "  virtual double Run(int n) = 0;\n"
       "};\n"},
      {"src/core/impls.cc",
       "#include \"strategy.h\"\n"
       "class Greedy : public Strategy {\n"
       " public:\n"
       "  double Run(int n) override { return 1.0; }\n"
       "};\n"
       "class Random : public Strategy {\n"
       " public:\n"
       "  double Run(int n) override { return 2.0; }\n"
       "};\n"
       "double Drive(int n) {\n"
       "  std::unique_ptr<Strategy> strategy = MakeStrategy();\n"
       "  return strategy->Run(n);\n"
       "}\n"},
  });
  // No Strategy::Run definition exists, so the call over-approximates to
  // every same-name method — the token-level model of virtual dispatch.
  EXPECT_TRUE(HasEdge(built.graph, "Drive", "Greedy::Run"));
  EXPECT_TRUE(HasEdge(built.graph, "Drive", "Random::Run"));
}

TEST(CallGraphTest, ConstructionShapesResolveToTheCtor) {
  const BuiltGraph built = BuildFrom({
      {"src/core/maker.cc",
       "class Widget {\n"
       " public:\n"
       "  Widget(int n) { }\n"
       "};\n"
       "void Stack() { Widget w(3); }\n"
       "void Heap() { auto p = std::make_unique<Widget>(4); }\n"},
  });
  EXPECT_TRUE(HasEdge(built.graph, "Stack", "Widget"));
  EXPECT_TRUE(HasEdge(built.graph, "Heap", "Widget"));
}

TEST(CallGraphTest, AmbiguousCallsCountAsUnresolvedWithReason) {
  const BuiltGraph built = BuildFrom({
      {"src/core/amb.cc",
       "class A { public: int Go() { return 1; } };\n"
       "class B { public: int Go() { return 2; } };\n"
       "int Use(int which) { return untyped->Go(); }\n"},
  });
  EXPECT_GE(built.graph.stats.unresolved_calls, 1u);
  const std::size_t use = NodeByDisplay(built.graph, "Use");
  ASSERT_NE(use, CallGraph::kNoNode);
  bool found = false;
  for (const CallSite& site : built.graph.nodes[use].calls) {
    if (site.name == "Go") {
      EXPECT_TRUE(site.targets.empty());
      EXPECT_FALSE(site.why_unresolved.empty());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CallGraphTest, ExternalCallsDoNotCountAsUnresolved) {
  const BuiltGraph built = BuildFrom({
      {"src/core/ext.cc",
       "void Use() { std::sort(v.begin(), v.end()); }\n"},
  });
  EXPECT_GE(built.graph.stats.external_calls, 1u);
  EXPECT_EQ(built.graph.stats.unresolved_calls, 0u);
}

TEST(CallGraphTest, ReachStopsAtBarrierAndRendersPath) {
  const BuiltGraph built = BuildFrom({
      {"src/core/chain.cc",
       "void Leaf() { }\n"
       "void Cold() { Leaf(); }\n"
       "void Mid() { Cold(); }\n"
       "void Root() { Mid(); }\n"},
  });
  const std::size_t root = NodeByDisplay(built.graph, "Root");
  const std::size_t cold = NodeByDisplay(built.graph, "Cold");
  const std::size_t leaf = NodeByDisplay(built.graph, "Leaf");
  ASSERT_NE(root, CallGraph::kNoNode);
  std::vector<std::size_t> parent;
  built.graph.Reach({root}, /*use_reverse=*/false,
                    [&](std::size_t n) { return n == cold; }, &parent);
  // The barrier node is reached (reported at the frontier) but not
  // expanded: nothing past it is visited.
  EXPECT_NE(parent[cold], CallGraph::kNoNode);
  EXPECT_EQ(parent[leaf], CallGraph::kNoNode);
  EXPECT_EQ(built.graph.PathFrom(parent, cold), "Root -> Mid -> Cold");
}

TEST(CallGraphTest, TemplateCallsResolveAcrossArgumentList) {
  const BuiltGraph built = BuildFrom({
      {"src/core/tmpl.cc",
       "template <typename T, int N>\n"
       "int Make(int x) { return x + N; }\n"
       "int Use(int x) { return Make<int, 4>(x); }\n"
       "int Shift(int total, int y) { return total << Make(y); }\n"},
  });
  EXPECT_TRUE(HasEdge(built.graph, "Use", "Make"));
  EXPECT_TRUE(HasEdge(built.graph, "Shift", "Make"));
}

TEST(CallGraphTest, MacroArgumentCallsBecomeEdges) {
  const BuiltGraph built = BuildFrom({
      {"src/core/mac.cc",
       "bool Validate(int x) { return x > 0; }\n"
       "void F(int x) { CA_CHECK(Validate(x)); }\n"},
  });
  EXPECT_TRUE(HasEdge(built.graph, "F", "Validate"));
}

}  // namespace
}  // namespace copyattack::analyze
