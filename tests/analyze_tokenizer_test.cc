// Unit tests for the copyattack-analyze C++ tokenizer
// (tools/analyze/tokenizer.h): the translation-phase cases that the
// regex-era linter misread — raw strings, line splices, CRLF files, block
// comments spanning would-be rule matches — plus the blanked per-line view
// the migrated linter matches against, the scope scanner, and the
// layers.toml parser.

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/layers.h"
#include "analyze/structure.h"
#include "analyze/tokenizer.h"
#include "gtest/gtest.h"

namespace copyattack::analyze {
namespace {

std::vector<std::string> IdentifierTexts(const LexedFile& lexed) {
  std::vector<std::string> out;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kIdentifier) out.push_back(token.text);
  }
  return out;
}

bool HasIdentifier(const LexedFile& lexed, const std::string& text) {
  const std::vector<std::string> idents = IdentifierTexts(lexed);
  return std::find(idents.begin(), idents.end(), text) != idents.end();
}

TEST(TokenizerTest, RawStringBodyIsOpaque) {
  const LexedFile lexed = LexString(
      "raw.cc",
      "const char* s = R\"(std::rand() time(nullptr) \"quoted\")\";\n"
      "int after = 1;\n");
  ASSERT_TRUE(lexed.errors.empty());
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
  EXPECT_FALSE(HasIdentifier(lexed, "time"));
  EXPECT_TRUE(HasIdentifier(lexed, "after"));
  // The blanked view keeps only the delimiting quotes of the literal.
  EXPECT_EQ(lexed.code_lines[0].find("rand"), std::string::npos);
  EXPECT_NE(lexed.code_lines[0].find("const char* s = R\""),
            std::string::npos);
}

TEST(TokenizerTest, RawStringCustomDelimiterSurvivesQuoteParen) {
  // `")` inside the body must not terminate a d-char-seq raw string.
  const LexedFile lexed = LexString(
      "raw.cc",
      "const char* s = R\"doc(embedded \") quote-paren new delete)doc\";\n"
      "int tail = 2;\n");
  ASSERT_TRUE(lexed.errors.empty());
  EXPECT_FALSE(HasIdentifier(lexed, "new"));
  EXPECT_TRUE(HasIdentifier(lexed, "tail"));
}

TEST(TokenizerTest, MultiLineRawStringKeepsLineNumbers) {
  const LexedFile lexed = LexString("raw.cc",
                                    "auto s = R\"(line one\n"
                                    "line two\n"
                                    "line three)\";\n"
                                    "int marker = 3;\n");
  ASSERT_TRUE(lexed.errors.empty());
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kIdentifier && token.text == "marker") {
      EXPECT_EQ(token.line, 4u);
    }
    if (token.kind == TokenKind::kString) {
      EXPECT_EQ(token.line, 1u);  // reported at its opening quote
    }
  }
}

TEST(TokenizerTest, UnterminatedRawStringIsAnError) {
  const LexedFile lexed =
      LexString("raw.cc", "auto s = R\"(never closed\nmore\n");
  ASSERT_FALSE(lexed.errors.empty());
}

TEST(TokenizerTest, LineSpliceJoinsLogicalLine) {
  // The identifier is split across physical lines by a backslash-newline;
  // phase-2 splicing must reassemble it.
  const LexedFile lexed = LexString("splice.cc", "int spli\\\nced = 0;\n");
  EXPECT_TRUE(HasIdentifier(lexed, "spliced"));
  EXPECT_FALSE(HasIdentifier(lexed, "spli"));
}

TEST(TokenizerTest, SplicedLineCommentSwallowsContinuation) {
  const LexedFile lexed = LexString("splice.cc",
                                    "// comment continues \\\n"
                                    "std::rand() on this line too\n"
                                    "int live = 1;\n");
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
  EXPECT_TRUE(HasIdentifier(lexed, "live"));
  ASSERT_EQ(lexed.comments.size(), 1u);
  EXPECT_EQ(lexed.comments[0].line_begin, 1u);
  EXPECT_EQ(lexed.comments[0].line_end, 2u);
}

TEST(TokenizerTest, CrlfIsNormalized) {
  const LexedFile lexed =
      LexString("crlf.cc", "int a = 1;\r\nint b = 2;\r\nint c = 3;\r\n");
  ASSERT_EQ(lexed.code_lines.size(), 4u);  // 3 lines + empty tail
  EXPECT_EQ(lexed.code_lines[1], "int b = 2;");
  for (const Token& token : lexed.tokens) {
    if (token.text == "c") {
      EXPECT_EQ(token.line, 3u);
    }
  }
}

TEST(TokenizerTest, BlockCommentSpanningRuleMatchIsBlanked) {
  const LexedFile lexed = LexString("block.cc",
                                    "int before = 0; /* std::rand()\n"
                                    "time(nullptr) still commented\n"
                                    "*/ int after = 1;\n");
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
  EXPECT_FALSE(HasIdentifier(lexed, "time"));
  EXPECT_TRUE(HasIdentifier(lexed, "before"));
  EXPECT_TRUE(HasIdentifier(lexed, "after"));
  // Middle line of the blanked view is all comment, hence all spaces.
  EXPECT_EQ(lexed.code_lines[1].find_first_not_of(' '), std::string::npos);
  ASSERT_EQ(lexed.comments.size(), 1u);
  EXPECT_EQ(lexed.comments[0].line_begin, 1u);
  EXPECT_EQ(lexed.comments[0].line_end, 3u);
}

TEST(TokenizerTest, DigitSeparatorsStayNumeric) {
  // The regex-era stripper treated `'` as a char-literal quote and blanked
  // the rest of the line after 1'000'000.
  const LexedFile lexed =
      LexString("num.cc", "long n = 1'000'000; int visible = 9;\n");
  EXPECT_TRUE(HasIdentifier(lexed, "visible"));
  bool found_number = false;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kNumber && token.text == "1'000'000") {
      found_number = true;
    }
  }
  EXPECT_TRUE(found_number);
  EXPECT_NE(lexed.code_lines[0].find("visible"), std::string::npos);
}

TEST(TokenizerTest, EncodingPrefixedLiteralsAreStrings) {
  const LexedFile lexed = LexString(
      "pfx.cc", "auto a = u8\"x new y\"; auto b = L\"delete\"; auto c = "
                "u'q'; auto d = U\"rand\";\n");
  EXPECT_FALSE(HasIdentifier(lexed, "new"));
  EXPECT_FALSE(HasIdentifier(lexed, "delete"));
  EXPECT_FALSE(HasIdentifier(lexed, "rand"));
  // u8/L/U must not survive as identifiers glued to the literal.
  EXPECT_FALSE(HasIdentifier(lexed, "u8"));
}

TEST(TokenizerTest, IncludePathsBecomeDedicatedTokens) {
  const LexedFile lexed = LexString("inc.cc",
                                    "#include \"util/rng.h\"\n"
                                    "#include <vector>\n");
  std::vector<const Token*> paths;
  for (const Token& token : lexed.tokens) {
    if (token.kind == TokenKind::kIncludePath) paths.push_back(&token);
  }
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0]->text, "util/rng.h");
  EXPECT_FALSE(paths[0]->angled);
  EXPECT_EQ(paths[1]->text, "vector");
  EXPECT_TRUE(paths[1]->angled);
  // Quoted path bodies are blanked like strings; the directive skeleton
  // stays for the header-guard rule.
  EXPECT_EQ(lexed.code_lines[0].find("util"), std::string::npos);
  EXPECT_NE(lexed.code_lines[0].find("#include"), std::string::npos);
}

TEST(TokenizerTest, DirectiveTokensAreMarked) {
  const LexedFile lexed = LexString("def.cc",
                                    "#define HELPER(x) do { (x); } while (0)\n"
                                    "int normal = 0;\n");
  for (const Token& token : lexed.tokens) {
    if (token.line == 1) {
      EXPECT_TRUE(token.in_directive) << token.text;
    }
    if (token.text == "normal") {
      EXPECT_FALSE(token.in_directive);
    }
  }
}

TEST(TokenizerTest, AllowanceAppliesToSpannedAndNextLine) {
  const LexedFile lexed = LexString("allow.cc",
                                    "int a = 1;\n"
                                    "// analyze:allow(some-rule) reason\n"
                                    "int b = 2;\n"
                                    "int c = 3;\n");
  EXPECT_TRUE(lexed.Allows(2, "analyze:allow", "some-rule"));
  EXPECT_TRUE(lexed.Allows(3, "analyze:allow", "some-rule"));
  EXPECT_FALSE(lexed.Allows(4, "analyze:allow", "some-rule"));
  EXPECT_FALSE(lexed.Allows(2, "lint:allow", "some-rule"));
}

TEST(ScannerTest, FindsOutOfClassMethodAndGuardedField) {
  const LexedFile lexed = LexString(
      "worker.cc",
      "class Worker {\n"
      " public:\n"
      "  void Tick();\n"
      " private:\n"
      "  std::mutex mu_;\n"
      "  int count_ CA_GUARDED_BY(mu_) = 0;\n"
      "};\n"
      "void Worker::Tick() { std::lock_guard<std::mutex> l(mu_); ++count_; "
      "}\n");
  const FileStructure structure = ScanStructure(lexed);
  ASSERT_EQ(structure.fields.size(), 1u);
  EXPECT_EQ(structure.fields[0].class_name, "Worker");
  EXPECT_EQ(structure.fields[0].field_name, "count_");
  EXPECT_EQ(structure.fields[0].mutex_name, "mu_");
  ASSERT_EQ(structure.functions.size(), 1u);
  EXPECT_EQ(structure.functions[0].class_name, "Worker");
  EXPECT_EQ(structure.functions[0].name, "Tick");
  EXPECT_FALSE(structure.functions[0].is_ctor);
}

TEST(ScannerTest, ConstructorInitializerListIsNotABody) {
  const LexedFile lexed = LexString(
      "ctor.cc",
      "Histogram::Histogram(std::vector<double> bounds)\n"
      "    : bounds_(std::move(bounds)), shards_(16) {\n"
      "  total_ = 0;\n"
      "}\n");
  const FileStructure structure = ScanStructure(lexed);
  ASSERT_EQ(structure.functions.size(), 1u);
  EXPECT_TRUE(structure.functions[0].is_ctor);
  EXPECT_EQ(structure.functions[0].class_name, "Histogram");
}

TEST(ScannerTest, ExportsTypesAliasesEnumeratorsAndMacros) {
  const LexedFile lexed = LexString("exports.h",
                                    "#define MY_MACRO(x) (x)\n"
                                    "struct Tensor { int rank; };\n"
                                    "enum class Mode { kFast, kSafe };\n"
                                    "using Row = int;\n"
                                    "typedef double Scalar;\n"
                                    "inline int Clamp(int v) { return v; }\n");
  const FileStructure structure = ScanStructure(lexed);
  for (const char* name :
       {"MY_MACRO", "Tensor", "Mode", "kFast", "kSafe", "Row", "Scalar",
        "Clamp"}) {
    EXPECT_EQ(structure.exported.count(name), 1u) << name;
  }
}

TEST(LayersTest, ParsesContractAndValidatesEdges) {
  LayerContract contract;
  std::string error;
  ASSERT_TRUE(ParseLayerContract("# comment\n"
                                 "[modules]\n"
                                 "obs = []\n"
                                 "util = [\"obs\"]  # trailing comment\n"
                                 "[top]\n"
                                 "modules = [\"tools\"]\n"
                                 "[pure]\n"
                                 "headers = [\"util/annotations.h\"]\n",
                                 &contract, &error))
      << error;
  EXPECT_TRUE(contract.AllowsEdge("util", "obs"));
  EXPECT_FALSE(contract.AllowsEdge("obs", "util"));
  EXPECT_TRUE(contract.AllowsEdge("tools", "util"));
  EXPECT_TRUE(contract.IsPureHeader("util/annotations.h"));

  LayerContract bad;
  EXPECT_FALSE(ParseLayerContract("[modules]\nutil = [\"typo\"]\n", &bad,
                                  &error));
  EXPECT_NE(error.find("typo"), std::string::npos);
}

}  // namespace
}  // namespace copyattack::analyze
