#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/copy_attack.h"
#include "core/flat_policy.h"
#include "rec/pinsage_lite.h"
#include "test_helpers.h"
#include "test_seed.h"

namespace copyattack::core {
namespace {

using testhelpers::SharedTinyWorld;

EnvConfig SmallEnvConfig() {
  EnvConfig config;
  config.budget = 9;
  config.query_interval = 3;
  config.num_pretend_users = 10;
  config.reward_k = 20;
  config.query_candidates = 50;
  config.seed = 7;
  return config;
}

CopyAttackConfig SmallAgentConfig() {
  CopyAttackConfig config;
  config.learning_rate = 0.1f;
  return config;
}

TEST(RandomAttackTest, InjectsFullBudget) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  RandomAttack attack(tw.world.dataset);
  attack.BeginTargetItem(tw.cold_target);
  env.Reset(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  const double reward = attack.RunEpisode(env, rng);
  EXPECT_TRUE(env.done());
  EXPECT_EQ(env.black_box().injected_profiles(), 9U);
  EXPECT_GE(reward, 0.0);
  EXPECT_LE(reward, 1.0);
}

TEST(TargetAttackTest, OnlyCopiesHolders) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  TargetAttack attack(tw.world.dataset, 1.0);
  attack.BeginTargetItem(tw.cold_target);
  env.Reset(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  attack.RunEpisode(env, rng);

  // Every injected profile must contain the target item (keep = 100% and
  // all holders' raw profiles contain it).
  const data::Dataset& polluted = env.black_box().polluted();
  const std::size_t base =
      tw.split.train.num_users() + env.pretend_users().size();
  for (data::UserId u = static_cast<data::UserId>(base);
       u < polluted.num_users(); ++u) {
    EXPECT_TRUE(polluted.HasInteraction(u, tw.cold_target));
  }
}

TEST(TargetAttackTest, CraftingShortensProfiles) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model_40 = tw.model;
  rec::PinSageLite model_100 = tw.model;

  AttackEnvironment env_40(tw.world.dataset, tw.split.train, &model_40,
                           SmallEnvConfig());
  AttackEnvironment env_100(tw.world.dataset, tw.split.train, &model_100,
                            SmallEnvConfig());
  TargetAttack attack_40(tw.world.dataset, 0.4);
  TargetAttack attack_100(tw.world.dataset, 1.0);
  attack_40.BeginTargetItem(tw.cold_target);
  attack_100.BeginTargetItem(tw.cold_target);
  env_40.Reset(tw.cold_target);
  env_100.Reset(tw.cold_target);
  util::Rng rng_a(testhelpers::TestSeed(3)), rng_b(testhelpers::TestSeed(3));
  attack_40.RunEpisode(env_40, rng_a);
  attack_100.RunEpisode(env_100, rng_b);

  const double items_40 =
      static_cast<double>(env_40.black_box().injected_interactions()) /
      static_cast<double>(env_40.black_box().injected_profiles());
  const double items_100 =
      static_cast<double>(env_100.black_box().injected_interactions()) /
      static_cast<double>(env_100.black_box().injected_profiles());
  EXPECT_LT(items_40, items_100)
      << "40% crafting must use a smaller item budget than raw profiles";
}

TEST(TargetAttackTest, NameReflectsKeepFraction) {
  const auto& tw = SharedTinyWorld();
  EXPECT_EQ(TargetAttack(tw.world.dataset, 0.4).name(), "TargetAttack40");
  EXPECT_EQ(TargetAttack(tw.world.dataset, 0.7).name(), "TargetAttack70");
  EXPECT_EQ(TargetAttack(tw.world.dataset, 1.0).name(), "TargetAttack100");
}

TEST(CopyAttackTest, NamesReflectAblations) {
  const auto& tw = SharedTinyWorld();
  CopyAttackConfig config;
  CopyAttack full(&tw.world.dataset, &tw.artifacts.tree,
                  &tw.artifacts.mf.user_embeddings(),
                  &tw.artifacts.mf.item_embeddings(), config, 1);
  EXPECT_EQ(full.name(), "CopyAttack");

  config.use_masking = false;
  CopyAttack no_mask(&tw.world.dataset, &tw.artifacts.tree,
                     &tw.artifacts.mf.user_embeddings(),
                     &tw.artifacts.mf.item_embeddings(), config, 1);
  EXPECT_EQ(no_mask.name(), "CopyAttack-Masking");

  config.use_masking = true;
  config.use_crafting = false;
  CopyAttack no_craft(&tw.world.dataset, &tw.artifacts.tree,
                      &tw.artifacts.mf.user_embeddings(),
                      &tw.artifacts.mf.item_embeddings(), config, 1);
  EXPECT_EQ(no_craft.name(), "CopyAttack-Length");
}

TEST(CopyAttackTest, EpisodeRunsAndInjects) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  CopyAttack attack(&tw.world.dataset, &tw.artifacts.tree,
                    &tw.artifacts.mf.user_embeddings(),
                    &tw.artifacts.mf.item_embeddings(), SmallAgentConfig(),
                    1);
  attack.BeginTargetItem(tw.cold_target);
  env.Reset(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  const double reward = attack.RunEpisode(env, rng);
  EXPECT_GE(reward, 0.0);
  EXPECT_LE(reward, 1.0);
  EXPECT_GT(env.black_box().injected_profiles(), 0U);
}

TEST(CopyAttackTest, MaskedAgentOnlyInjectsHolderProfiles) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  CopyAttack attack(&tw.world.dataset, &tw.artifacts.tree,
                    &tw.artifacts.mf.user_embeddings(),
                    &tw.artifacts.mf.item_embeddings(), SmallAgentConfig(),
                    1);
  attack.BeginTargetItem(tw.cold_target);

  // Candidates must be exactly the source holders of the target item.
  const auto& holders = tw.world.dataset.SourceHolders(tw.cold_target);
  EXPECT_EQ(attack.candidates().size(), holders.size());

  env.Reset(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  attack.RunEpisode(env, rng);

  // Every injected profile contains the target item (mask + craft window).
  const data::Dataset& polluted = env.black_box().polluted();
  const std::size_t base =
      tw.split.train.num_users() + env.pretend_users().size();
  ASSERT_GT(polluted.num_users(), base);
  for (data::UserId u = static_cast<data::UserId>(base);
       u < polluted.num_users(); ++u) {
    EXPECT_TRUE(polluted.HasInteraction(u, tw.cold_target));
  }
}

TEST(CopyAttackTest, ExcludeSelectedNeverRepeatsUsers) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  EnvConfig env_config = SmallEnvConfig();
  env_config.budget = 30;  // larger than the holder pool of a cold item
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        env_config);
  CopyAttack attack(&tw.world.dataset, &tw.artifacts.tree,
                    &tw.artifacts.mf.user_embeddings(),
                    &tw.artifacts.mf.item_embeddings(), SmallAgentConfig(),
                    1);
  attack.BeginTargetItem(tw.cold_target);
  env.Reset(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  attack.RunEpisode(env, rng);
  // With exclusion, the number of injections can't exceed the holders.
  EXPECT_LE(env.black_box().injected_profiles(),
            tw.world.dataset.SourceHolders(tw.cold_target).size());
}

TEST(CopyAttackTest, LearningImprovesPretendReward) {
  // Across episodes the final reward should not collapse; and the last
  // episode should do at least as well as the first on average. This is a
  // smoke-level learning test (tight guarantees are in the bench) and a
  // statistical claim about a 6-episode trajectory — only guaranteed on
  // the controlled default world.
  if (testhelpers::SeedOverrideActive()) {
    GTEST_SKIP() << "trajectory not guaranteed under COPYATTACK_TEST_SEED";
  }
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  EnvConfig env_config = SmallEnvConfig();
  env_config.budget = 6;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        env_config);
  CopyAttack attack(&tw.world.dataset, &tw.artifacts.tree,
                    &tw.artifacts.mf.user_embeddings(),
                    &tw.artifacts.mf.item_embeddings(), SmallAgentConfig(),
                    1);
  attack.BeginTargetItem(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  double first = 0.0, last = 0.0;
  const int episodes = 6;
  for (int e = 0; e < episodes; ++e) {
    env.Reset(tw.cold_target);
    const double reward = attack.RunEpisode(env, rng);
    if (e == 0) first = reward;
    last = reward;
  }
  EXPECT_GE(last, first - 0.25) << "learning should not collapse rewards";
}

TEST(FlatPolicyTest, EpisodeRunsAndRespectsHolders) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  FlatPolicyNetwork attack(&tw.world.dataset,
                           &tw.artifacts.mf.user_embeddings(),
                           &tw.artifacts.mf.item_embeddings(),
                           FlatPolicyNetwork::Config{}, 1);
  EXPECT_EQ(attack.name(), "PolicyNetwork");
  attack.BeginTargetItem(tw.cold_target);
  env.Reset(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  const double reward = attack.RunEpisode(env, rng);
  EXPECT_GE(reward, 0.0);

  const data::Dataset& polluted = env.black_box().polluted();
  const std::size_t base =
      tw.split.train.num_users() + env.pretend_users().size();
  for (data::UserId u = static_cast<data::UserId>(base);
       u < polluted.num_users(); ++u) {
    EXPECT_TRUE(polluted.HasInteraction(u, tw.cold_target));
  }
}

TEST(FlatPolicyTest, DecisionCostScalesWithUsers) {
  const auto& tw = SharedTinyWorld();
  FlatPolicyNetwork attack(&tw.world.dataset,
                           &tw.artifacts.mf.user_embeddings(),
                           &tw.artifacts.mf.item_embeddings(),
                           FlatPolicyNetwork::Config{}, 1);
  // Cost must be at least hidden * n_users.
  EXPECT_GE(attack.DecisionCost(),
            16U * tw.world.dataset.source.num_users());
}

}  // namespace
}  // namespace copyattack::core

namespace copyattack::core {
namespace {

TEST(CopyAttackTest, EvalModeFreezesBehavior) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  CopyAttack attack(&tw.world.dataset, &tw.artifacts.tree,
                    &tw.artifacts.mf.user_embeddings(),
                    &tw.artifacts.mf.item_embeddings(), SmallAgentConfig(),
                    1);
  attack.BeginTargetItem(tw.cold_target);
  attack.SetEvalMode(true);

  // Two greedy episodes from identical environment states must inject the
  // exact same user sequence (greedy + frozen parameters).
  env.Reset(tw.cold_target);
  util::Rng rng_a(testhelpers::TestSeed(3));
  attack.RunEpisode(env, rng_a);
  const std::size_t users_a = env.black_box().polluted().num_users();
  std::vector<data::Profile> profiles_a;
  const std::size_t base =
      tw.split.train.num_users() + env.pretend_users().size();
  for (data::UserId u = static_cast<data::UserId>(base); u < users_a; ++u) {
    profiles_a.push_back(env.black_box().polluted().UserProfile(u));
  }

  env.Reset(tw.cold_target);
  util::Rng rng_b(testhelpers::TestSeed(777));  // different RNG; greedy should not care except a_0
  attack.RunEpisode(env, rng_b);
  // The seed action a_0 is random even in eval mode, so only check that
  // the episode ran and the injected count is comparable.
  EXPECT_GT(env.black_box().injected_profiles(), 0U);
  EXPECT_EQ(users_a - base, profiles_a.size());
}

TEST(CopyAttackTest, PlainHitRatioRewardModeRuns) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  CopyAttackConfig config = SmallAgentConfig();
  config.reward_shaping = RewardShaping::kHitRatio;
  CopyAttack attack(&tw.world.dataset, &tw.artifacts.tree,
                    &tw.artifacts.mf.user_embeddings(),
                    &tw.artifacts.mf.item_embeddings(), config, 1);
  attack.BeginTargetItem(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  for (int episode = 0; episode < 3; ++episode) {
    env.Reset(tw.cold_target);
    const double reward = attack.RunEpisode(env, rng);
    EXPECT_GE(reward, 0.0);
    EXPECT_LE(reward, 1.0);
  }
}

TEST(FlatPolicyTest, EvalModeRuns) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  FlatPolicyNetwork attack(&tw.world.dataset,
                           &tw.artifacts.mf.user_embeddings(),
                           &tw.artifacts.mf.item_embeddings(),
                           FlatPolicyNetwork::Config{}, 1);
  attack.BeginTargetItem(tw.cold_target);
  attack.SetEvalMode(true);
  env.Reset(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  const double reward = attack.RunEpisode(env, rng);
  EXPECT_GE(reward, 0.0);
  EXPECT_GT(env.black_box().injected_profiles(), 0U);
}

}  // namespace
}  // namespace copyattack::core

namespace copyattack::core {
namespace {

TEST(CopyAttackTest, CheckpointRoundTripPreservesBehavior) {
  const auto& tw = SharedTinyWorld();
  CopyAttack original(&tw.world.dataset, &tw.artifacts.tree,
                      &tw.artifacts.mf.user_embeddings(),
                      &tw.artifacts.mf.item_embeddings(),
                      SmallAgentConfig(), 1);
  original.BeginTargetItem(tw.cold_target);

  // Train it a little so the parameters differ from the fresh init.
  {
    rec::PinSageLite model = tw.model;
    AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                          SmallEnvConfig());
    util::Rng rng(testhelpers::TestSeed(3));
    for (int e = 0; e < 2; ++e) {
      env.Reset(tw.cold_target);
      original.RunEpisode(env, rng);
    }
  }

  const std::string path = testing::TempDir() + "/copyattack_ckpt.bin";
  ASSERT_TRUE(original.SaveCheckpoint(path));

  // A fresh agent with a DIFFERENT init seed must behave identically
  // after loading the checkpoint (greedy actions match).
  CopyAttack restored(&tw.world.dataset, &tw.artifacts.tree,
                      &tw.artifacts.mf.user_embeddings(),
                      &tw.artifacts.mf.item_embeddings(),
                      SmallAgentConfig(), 999);
  restored.BeginTargetItem(tw.cold_target);
  ASSERT_TRUE(restored.LoadCheckpoint(path));

  original.SetEvalMode(true);
  restored.SetEvalMode(true);
  rec::PinSageLite model_a = tw.model;
  rec::PinSageLite model_b = tw.model;
  AttackEnvironment env_a(tw.world.dataset, tw.split.train, &model_a,
                          SmallEnvConfig());
  AttackEnvironment env_b(tw.world.dataset, tw.split.train, &model_b,
                          SmallEnvConfig());
  env_a.Reset(tw.cold_target);
  env_b.Reset(tw.cold_target);
  util::Rng rng_a(testhelpers::TestSeed(55)), rng_b(testhelpers::TestSeed(55));  // same seed so a_0 matches
  const double ra = original.RunEpisode(env_a, rng_a);
  const double rb = restored.RunEpisode(env_b, rng_b);
  EXPECT_DOUBLE_EQ(ra, rb);
  std::remove(path.c_str());
}

TEST(CopyAttackTest, GruEncoderAgentRuns) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  CopyAttackConfig config = SmallAgentConfig();
  config.selection.encoder = SequenceEncoderType::kGru;
  CopyAttack attack(&tw.world.dataset, &tw.artifacts.tree,
                    &tw.artifacts.mf.user_embeddings(),
                    &tw.artifacts.mf.item_embeddings(), config, 1);
  attack.BeginTargetItem(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  for (int e = 0; e < 2; ++e) {
    env.Reset(tw.cold_target);
    const double reward = attack.RunEpisode(env, rng);
    EXPECT_GE(reward, 0.0);
    EXPECT_LE(reward, 1.0);
  }
}

TEST(EnvironmentTest, NdcgRewardIsAtMostHitRatio) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model_h = tw.model;
  rec::PinSageLite model_n = tw.model;
  EnvConfig hr_config = SmallEnvConfig();
  EnvConfig ndcg_config = SmallEnvConfig();
  ndcg_config.reward_metric = RewardMetric::kNdcg;

  AttackEnvironment hr_env(tw.world.dataset, tw.split.train, &model_h,
                           hr_config);
  AttackEnvironment ndcg_env(tw.world.dataset, tw.split.train, &model_n,
                             ndcg_config);
  hr_env.Reset(tw.cold_target);
  ndcg_env.Reset(tw.cold_target);

  // Inject the same holders into both, then compare raw measures.
  const auto& holders = tw.world.dataset.SourceHolders(tw.cold_target);
  for (std::size_t i = 0; i < 3 && i < holders.size(); ++i) {
    hr_env.Step(tw.world.dataset.source.UserProfile(holders[i]));
    ndcg_env.Step(tw.world.dataset.source.UserProfile(holders[i]));
  }
  const double hr = hr_env.RawHitRatio();
  const double ndcg = ndcg_env.RawHitRatio();
  // NDCG discounts rank, so per user it is <= the hit indicator.
  EXPECT_LE(ndcg, hr + 1e-9);
  EXPECT_GE(ndcg, 0.0);
}

}  // namespace
}  // namespace copyattack::core
