#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "test_seed.h"

#include "cluster/hierarchical_tree.h"
#include "cluster/kmeans.h"
#include "math/matrix.h"
#include "util/rng.h"

namespace copyattack::cluster {
namespace {

math::Matrix MakeGaussianBlobs(std::size_t per_blob, util::Rng& rng) {
  // Three well-separated 2-D blobs.
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  math::Matrix points(3 * per_blob, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t row = b * per_blob + i;
      points(row, 0) =
          centers[b][0] + static_cast<float>(rng.Normal(0.0, 0.5));
      points(row, 1) =
          centers[b][1] + static_cast<float>(rng.Normal(0.0, 0.5));
    }
  }
  return points;
}

std::vector<std::size_t> AllIndices(std::size_t n) {
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  return indices;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  util::Rng rng(testhelpers::TestSeed(5));
  const math::Matrix points = MakeGaussianBlobs(30, rng);
  const auto result = KMeans(points, AllIndices(90), 3, rng);
  // All points of a blob should share one cluster.
  for (std::size_t b = 0; b < 3; ++b) {
    std::set<std::size_t> labels;
    for (std::size_t i = 0; i < 30; ++i) {
      labels.insert(result.assignment[b * 30 + i]);
    }
    EXPECT_EQ(labels.size(), 1U) << "blob " << b << " was split";
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  util::Rng rng(testhelpers::TestSeed(5));
  const math::Matrix points = MakeGaussianBlobs(30, rng);
  util::Rng r1(testhelpers::TestSeed(1)), r2(testhelpers::TestSeed(1));
  const double inertia1 = KMeans(points, AllIndices(90), 1, r1).inertia;
  const double inertia3 = KMeans(points, AllIndices(90), 3, r2).inertia;
  EXPECT_LT(inertia3, inertia1 * 0.5);
}

TEST(KMeansTest, WorksOnSubset) {
  util::Rng rng(testhelpers::TestSeed(5));
  const math::Matrix points = MakeGaussianBlobs(30, rng);
  const std::vector<std::size_t> subset = {0, 1, 2, 30, 31, 32};
  const auto result = KMeans(points, subset, 2, rng);
  EXPECT_EQ(result.assignment.size(), subset.size());
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[3], result.assignment[4]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
}

TEST(KMeansTest, HandlesDuplicatePoints) {
  math::Matrix points(6, 2, 1.0f);  // all identical
  util::Rng rng(testhelpers::TestSeed(7));
  const auto result = KMeans(points, AllIndices(6), 3, rng);
  EXPECT_EQ(result.assignment.size(), 6U);
}

TEST(BalancedAssignTest, SizesDifferByAtMostOne) {
  util::Rng rng(testhelpers::TestSeed(9));
  math::Matrix points(50, 3);
  points.FillNormal(rng, 0.0f, 1.0f);
  const auto km = KMeans(points, AllIndices(50), 4, rng);
  const auto balanced = BalancedAssign(points, AllIndices(50), km.centroids);
  std::map<std::size_t, std::size_t> sizes;
  for (const std::size_t c : balanced) ++sizes[c];
  EXPECT_EQ(sizes.size(), 4U);
  std::size_t min_size = 50, max_size = 0;
  for (const auto& [c, n] : sizes) {
    (void)c;
    min_size = std::min(min_size, n);
    max_size = std::max(max_size, n);
  }
  EXPECT_LE(max_size - min_size, 1U);
}

TEST(BalancedAssignTest, ExactDivisionGivesEqualSizes) {
  util::Rng rng(testhelpers::TestSeed(11));
  math::Matrix points(40, 2);
  points.FillNormal(rng, 0.0f, 1.0f);
  const auto assignment =
      BalancedKMeans(points, AllIndices(40), 4, rng);
  std::map<std::size_t, std::size_t> sizes;
  for (const std::size_t c : assignment) ++sizes[c];
  for (const auto& [c, n] : sizes) {
    (void)c;
    EXPECT_EQ(n, 10U);
  }
}

TEST(BalancedAssignTest, PrefersNearCentroids) {
  // Two clear blobs of equal size: balancing should not need to move
  // anything, so the balanced assignment must equal the natural one.
  util::Rng rng(testhelpers::TestSeed(13));
  math::Matrix points(20, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    points(i, 0) = static_cast<float>(rng.Normal(0.0, 0.1));
    points(i, 1) = 0.0f;
    points(10 + i, 0) = static_cast<float>(rng.Normal(20.0, 0.1));
    points(10 + i, 1) = 0.0f;
  }
  math::Matrix centroids(2, 2, 0.0f);
  centroids(1, 0) = 20.0f;
  const auto assignment = BalancedAssign(points, AllIndices(20), centroids);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(assignment[i], 0U);
    EXPECT_EQ(assignment[10 + i], 1U);
  }
}

TEST(TreeTest, BranchingForDepth) {
  EXPECT_EQ(HierarchicalTree::BranchingForDepth(8, 3), 2U);
  EXPECT_EQ(HierarchicalTree::BranchingForDepth(9, 3), 3U);   // 2^3 < 9 <= 3^3
  EXPECT_EQ(HierarchicalTree::BranchingForDepth(1000, 3), 10U);
  EXPECT_EQ(HierarchicalTree::BranchingForDepth(100, 1), 100U);
  EXPECT_EQ(HierarchicalTree::BranchingForDepth(5, 10), 2U);
}

TEST(TreeTest, EveryUserIsExactlyOneLeaf) {
  util::Rng rng(testhelpers::TestSeed(17));
  math::Matrix embeddings(37, 4);
  embeddings.FillNormal(rng, 0.0f, 1.0f);
  const auto tree = HierarchicalTree::Build(embeddings, 3, rng);
  EXPECT_EQ(tree.num_leaves(), 37U);
  std::set<std::size_t> users;
  for (const std::size_t leaf : tree.leaves()) {
    EXPECT_TRUE(tree.IsLeaf(leaf));
    users.insert(tree.node(leaf).leaf_user);
  }
  EXPECT_EQ(users.size(), 37U);
  for (std::size_t u = 0; u < 37; ++u) {
    const std::size_t leaf = tree.LeafOfUser(u);
    ASSERT_NE(leaf, kNoNode);
    EXPECT_EQ(tree.node(leaf).leaf_user, u);
  }
}

TEST(TreeTest, DepthMatchesPaperBound) {
  util::Rng rng(testhelpers::TestSeed(19));
  math::Matrix embeddings(100, 4);
  embeddings.FillNormal(rng, 0.0f, 1.0f);
  const auto tree = HierarchicalTree::Build(embeddings, 5, rng);
  // 5^2 = 25 < 100 <= 125 = 5^3, so depth must be 3.
  EXPECT_EQ(tree.depth(), 3U);
}

TEST(TreeTest, BuildWithDepthHonorsRequestedDepth) {
  util::Rng rng(testhelpers::TestSeed(19));
  math::Matrix embeddings(64, 4);
  embeddings.FillNormal(rng, 0.0f, 1.0f);
  for (const std::size_t depth : {2U, 3U, 6U}) {
    const auto tree =
        HierarchicalTree::BuildWithDepth(embeddings, depth, rng);
    EXPECT_LE(tree.depth(), depth) << "depth " << depth;
    EXPECT_EQ(tree.num_leaves(), 64U);
  }
}

TEST(TreeTest, ParentChildConsistency) {
  util::Rng rng(testhelpers::TestSeed(23));
  math::Matrix embeddings(29, 3);
  embeddings.FillNormal(rng, 0.0f, 1.0f);
  const auto tree = HierarchicalTree::Build(embeddings, 4, rng);
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    for (const std::size_t child : tree.node(id).children) {
      EXPECT_EQ(tree.node(child).parent, id);
      EXPECT_EQ(tree.node(child).level, tree.node(id).level + 1);
    }
  }
  EXPECT_EQ(tree.node(tree.root()).parent, kNoNode);
}

TEST(TreeTest, InternalNodesHaveBetweenTwoAndBranchingChildren) {
  util::Rng rng(testhelpers::TestSeed(29));
  math::Matrix embeddings(50, 3);
  embeddings.FillNormal(rng, 0.0f, 1.0f);
  const auto tree = HierarchicalTree::Build(embeddings, 4, rng);
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    const auto& node = tree.node(id);
    if (!node.children.empty()) {
      EXPECT_GE(node.children.size(), 2U);
      EXPECT_LE(node.children.size(), 4U);
    }
  }
}

TEST(TreeTest, MaskPropagatesUpward) {
  util::Rng rng(testhelpers::TestSeed(31));
  math::Matrix embeddings(16, 3);
  embeddings.FillNormal(rng, 0.0f, 1.0f);
  const auto tree = HierarchicalTree::Build(embeddings, 2, rng);

  // Allow only user 5: exactly the path root->leaf(5) must be unmasked.
  const auto mask =
      tree.ComputeMask([](std::size_t user) { return user == 5; });
  EXPECT_TRUE(mask[tree.root()]);
  std::size_t unmasked_leaves = 0;
  for (const std::size_t leaf : tree.leaves()) {
    if (mask[leaf]) {
      ++unmasked_leaves;
      EXPECT_EQ(tree.node(leaf).leaf_user, 5U);
      // Every ancestor must be unmasked.
      for (std::size_t n = leaf; n != kNoNode; n = tree.node(n).parent) {
        EXPECT_TRUE(mask[n]);
      }
    }
  }
  EXPECT_EQ(unmasked_leaves, 1U);

  // Internal nodes with no allowed descendant must be masked.
  for (std::size_t id = 0; id < tree.num_nodes(); ++id) {
    if (tree.node(id).children.empty()) continue;
    bool any_child = false;
    for (const std::size_t child : tree.node(id).children) {
      any_child = any_child || mask[child];
    }
    EXPECT_EQ(mask[id], any_child);
  }
}

TEST(TreeTest, MaskAllowAllAndAllowNone) {
  util::Rng rng(testhelpers::TestSeed(37));
  math::Matrix embeddings(10, 2);
  embeddings.FillNormal(rng, 0.0f, 1.0f);
  const auto tree = HierarchicalTree::Build(embeddings, 3, rng);
  const auto all = tree.ComputeMask([](std::size_t) { return true; });
  EXPECT_TRUE(std::all_of(all.begin(), all.end(),
                          [](bool b) { return b; }));
  const auto none = tree.ComputeMask([](std::size_t) { return false; });
  EXPECT_TRUE(std::none_of(none.begin(), none.end(),
                           [](bool b) { return b; }));
}

TEST(TreeTest, SingleUserTree) {
  math::Matrix embeddings(1, 2, 0.5f);
  util::Rng rng(testhelpers::TestSeed(41));
  const auto tree = HierarchicalTree::Build(embeddings, 2, rng);
  EXPECT_EQ(tree.num_leaves(), 1U);
  EXPECT_EQ(tree.depth(), 0U);
  EXPECT_TRUE(tree.IsLeaf(tree.root()));
}

/// Property sweep over (#users, branching): structure invariants hold for
/// many shapes.
class TreeShapeProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(TreeShapeProperty, StructureInvariants) {
  const auto [n, branching] = GetParam();
  util::Rng rng(testhelpers::TestSeed(1000 + n * 7 + branching));
  math::Matrix embeddings(n, 4);
  embeddings.FillNormal(rng, 0.0f, 1.0f);
  const auto tree = HierarchicalTree::Build(embeddings, branching, rng);

  EXPECT_EQ(tree.num_leaves(), n);
  EXPECT_EQ(tree.num_nodes(),
            tree.num_leaves() + tree.num_internal_nodes());

  // Paper bound: branching^(depth-1) < n <= branching^depth (for n > 1).
  if (n > 1) {
    const double depth_bound =
        std::ceil(std::log(static_cast<double>(n)) /
                  std::log(static_cast<double>(branching)) - 1e-9);
    EXPECT_LE(tree.depth(), static_cast<std::size_t>(depth_bound) + 1);
  }

  // Balanced: leaf levels differ by at most one.
  std::size_t min_level = SIZE_MAX, max_level = 0;
  for (const std::size_t leaf : tree.leaves()) {
    min_level = std::min(min_level, tree.node(leaf).level);
    max_level = std::max(max_level, tree.node(leaf).level);
  }
  EXPECT_LE(max_level - min_level, 1U);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeShapeProperty,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(2, 2),
                      std::make_pair<std::size_t, std::size_t>(7, 2),
                      std::make_pair<std::size_t, std::size_t>(8, 2),
                      std::make_pair<std::size_t, std::size_t>(9, 2),
                      std::make_pair<std::size_t, std::size_t>(27, 3),
                      std::make_pair<std::size_t, std::size_t>(50, 4),
                      std::make_pair<std::size_t, std::size_t>(100, 10),
                      std::make_pair<std::size_t, std::size_t>(121, 5)));

}  // namespace
}  // namespace copyattack::cluster
