#include <memory>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/copy_attack.h"
#include "core/runner.h"
#include "rec/pinsage_lite.h"
#include "test_helpers.h"
#include "test_seed.h"

namespace copyattack::core {
namespace {

using testhelpers::SharedTinyWorld;

CampaignConfig SmallCampaign() {
  CampaignConfig config;
  config.env.budget = 9;
  config.env.query_interval = 3;
  config.env.num_pretend_users = 10;
  config.env.query_candidates = 50;
  config.episodes = 3;
  config.eval_users = 60;
  config.eval_negatives = 50;
  config.num_threads = 2;
  return config;
}

std::vector<data::ItemId> SmallTargets() {
  const auto& tw = SharedTinyWorld();
  util::Rng rng(testhelpers::TestSeed(71));
  return data::SampleColdTargetItems(tw.world.dataset, 4, 10, rng);
}

TEST(IntegrationTest, WithoutAttackBaselineRow) {
  const auto& tw = SharedTinyWorld();
  const auto result = EvaluateWithoutAttack(
      tw.world.dataset, tw.split.train, tw.ModelFactory(), SmallTargets(),
      SmallCampaign());
  EXPECT_EQ(result.method, "WithoutAttack");
  EXPECT_EQ(result.num_target_items, 4U);
  EXPECT_GE(result.metrics.at(20).hr, 0.0);
  EXPECT_LE(result.metrics.at(20).hr, 1.0);
  // Cold items should rank poorly before the attack.
  EXPECT_LT(result.metrics.at(20).hr, 0.5);
}

TEST(IntegrationTest, RandomAttackCampaign) {
  const auto& tw = SharedTinyWorld();
  const auto result = RunCampaign(
      tw.world.dataset, tw.split.train, tw.ModelFactory(),
      [&](std::uint64_t) {
        return std::make_unique<RandomAttack>(tw.world.dataset);
      },
      SmallTargets(), SmallCampaign());
  EXPECT_EQ(result.method, "RandomAttack");
  EXPECT_EQ(result.num_target_items, 4U);
  EXPECT_GT(result.avg_items_per_profile, 0.0);
  EXPECT_GT(result.avg_profiles_injected, 0.0);
}

TEST(IntegrationTest, CopyAttackBeatsWithoutAttack) {
  // Statistical-ordering claim: 3 training episodes on the tiny world
  // only guarantee promotion on the controlled default configuration.
  if (testhelpers::SeedOverrideActive()) {
    GTEST_SKIP() << "ordering not guaranteed under COPYATTACK_TEST_SEED";
  }
  const auto& tw = SharedTinyWorld();
  const auto targets = SmallTargets();
  const auto config = SmallCampaign();

  const auto clean = EvaluateWithoutAttack(
      tw.world.dataset, tw.split.train, tw.ModelFactory(), targets, config);

  CopyAttackConfig agent_config;
  agent_config.learning_rate = 0.1f;
  const auto attacked = RunCampaign(
      tw.world.dataset, tw.split.train, tw.ModelFactory(),
      [&](std::uint64_t seed) {
        return std::make_unique<CopyAttack>(
            &tw.world.dataset, &tw.artifacts.tree,
            &tw.artifacts.mf.user_embeddings(),
            &tw.artifacts.mf.item_embeddings(), agent_config, seed);
      },
      targets, config);

  EXPECT_EQ(attacked.method, "CopyAttack");
  EXPECT_GT(attacked.metrics.at(20).hr, clean.metrics.at(20).hr)
      << "the attack must promote the target items";
}

TEST(IntegrationTest, TargetAttackBeatsRandomAttack) {
  // Statistical-ordering claim: with 3 episodes over 4 targets the
  // ordering is only guaranteed on the controlled default world, not on
  // an arbitrary reseed of it.
  if (testhelpers::SeedOverrideActive()) {
    GTEST_SKIP() << "ordering not guaranteed under COPYATTACK_TEST_SEED";
  }
  const auto& tw = SharedTinyWorld();
  const auto targets = SmallTargets();
  // A larger injection budget than SmallCampaign's: the ordering between
  // the two baselines is a statistical claim, and at budget 9 it hinges
  // on a single profile's draw.
  CampaignConfig config = SmallCampaign();
  config.env.budget = 18;

  const auto random = RunCampaign(
      tw.world.dataset, tw.split.train, tw.ModelFactory(),
      [&](std::uint64_t) {
        return std::make_unique<RandomAttack>(tw.world.dataset);
      },
      targets, config);
  const auto targeted = RunCampaign(
      tw.world.dataset, tw.split.train, tw.ModelFactory(),
      [&](std::uint64_t) {
        return std::make_unique<TargetAttack>(tw.world.dataset, 0.7);
      },
      targets, config);

  EXPECT_GT(targeted.metrics.at(20).hr, random.metrics.at(20).hr)
      << "profiles containing the target item must promote it better";
}

TEST(IntegrationTest, CampaignDeterministicAcrossRuns) {
  const auto& tw = SharedTinyWorld();
  const auto targets = SmallTargets();
  CampaignConfig config = SmallCampaign();
  config.num_threads = 2;

  auto factory = [&](std::uint64_t) {
    return std::make_unique<TargetAttack>(tw.world.dataset, 0.4);
  };
  const auto a = RunCampaign(tw.world.dataset, tw.split.train,
                             tw.ModelFactory(), factory, targets, config);
  const auto b = RunCampaign(tw.world.dataset, tw.split.train,
                             tw.ModelFactory(), factory, targets, config);
  EXPECT_DOUBLE_EQ(a.metrics.at(20).hr, b.metrics.at(20).hr);
  EXPECT_DOUBLE_EQ(a.metrics.at(5).ndcg, b.metrics.at(5).ndcg);
  EXPECT_DOUBLE_EQ(a.avg_items_per_profile, b.avg_items_per_profile);
}

TEST(IntegrationTest, ThreadedEqualsSequential) {
  const auto& tw = SharedTinyWorld();
  const auto targets = SmallTargets();
  auto factory = [&](std::uint64_t) {
    return std::make_unique<TargetAttack>(tw.world.dataset, 0.7);
  };
  CampaignConfig sequential = SmallCampaign();
  sequential.num_threads = 1;
  CampaignConfig threaded = SmallCampaign();
  threaded.num_threads = 4;

  const auto a = RunCampaign(tw.world.dataset, tw.split.train,
                             tw.ModelFactory(), factory, targets,
                             sequential);
  const auto b = RunCampaign(tw.world.dataset, tw.split.train,
                             tw.ModelFactory(), factory, targets, threaded);
  EXPECT_DOUBLE_EQ(a.metrics.at(20).hr, b.metrics.at(20).hr);
}

TEST(IntegrationTest, FormatRowContainsMethodName) {
  const auto& tw = SharedTinyWorld();
  const auto result = EvaluateWithoutAttack(
      tw.world.dataset, tw.split.train, tw.ModelFactory(), SmallTargets(),
      SmallCampaign());
  const std::string row = FormatCampaignRow(result);
  EXPECT_NE(row.find("WithoutAttack"), std::string::npos);
  EXPECT_FALSE(CampaignRowHeader().empty());
}

TEST(IntegrationTest, SourceArtifactsShapes) {
  const auto& tw = SharedTinyWorld();
  EXPECT_EQ(tw.artifacts.mf.user_embeddings().rows(),
            tw.world.dataset.source.num_users());
  EXPECT_EQ(tw.artifacts.tree.num_leaves(),
            tw.world.dataset.source.num_users());
  EXPECT_LE(tw.artifacts.tree.depth(), 3U);
}

TEST(IntegrationTest, RefitOnQueryEnvironmentWorks) {
  // The transductive-target ablation path: MF target model with periodic
  // refits on query rounds.
  const auto& tw = SharedTinyWorld();
  rec::MatrixFactorization mf;
  util::Rng rng(testhelpers::TestSeed(31));
  mf.Fit(tw.split.train, 8, rng);

  EnvConfig config;
  config.budget = 6;
  config.query_interval = 3;
  config.num_pretend_users = 8;
  config.query_candidates = 50;
  config.refit_on_query = true;
  config.refit_epochs = 1;
  config.seed = 5;

  AttackEnvironment env(tw.world.dataset, tw.split.train, &mf, config);
  TargetAttack attack(tw.world.dataset, 0.7);
  attack.BeginTargetItem(tw.cold_target);
  env.Reset(tw.cold_target);
  util::Rng episode_rng(testhelpers::TestSeed(3));
  const double reward = attack.RunEpisode(env, episode_rng);
  EXPECT_GE(reward, 0.0);
  EXPECT_LE(reward, 1.0);
  EXPECT_TRUE(env.done());
}

}  // namespace
}  // namespace copyattack::core
