#include <cmath>
#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "test_seed.h"

#include "math/sampling.h"
#include "math/vector_ops.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"
#include "nn/reinforce.h"
#include "nn/rnn.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace copyattack::nn {
namespace {

TEST(ActivationsTest, Sigmoid) {
  EXPECT_NEAR(Sigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(Sigmoid(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(Sigmoid(-100.0f), 0.0f, 1e-6f);
  // Symmetry: sigma(-x) = 1 - sigma(x).
  EXPECT_NEAR(Sigmoid(-1.3f), 1.0f - Sigmoid(1.3f), 1e-6f);
}

TEST(ActivationsTest, ReluForwardBackward) {
  std::vector<float> v = {-1.0f, 0.0f, 2.0f};
  ApplyActivation(Activation::kRelu, v);
  EXPECT_FLOAT_EQ(v[0], 0.0f);
  EXPECT_FLOAT_EQ(v[2], 2.0f);
  std::vector<float> g = {1.0f, 1.0f, 1.0f};
  ApplyActivationGrad(Activation::kRelu, v, g);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 1.0f);
}

TEST(ActivationsTest, TanhGradFromOutputs) {
  std::vector<float> v = {0.5f};
  ApplyActivation(Activation::kTanh, v);
  const float y = v[0];
  std::vector<float> g = {1.0f};
  ApplyActivationGrad(Activation::kTanh, v, g);
  EXPECT_NEAR(g[0], 1.0f - y * y, 1e-6f);
}

TEST(DenseTest, ForwardComputesAffineMap) {
  util::Rng rng(testhelpers::TestSeed(1));
  DenseLayer layer("d", 2, 2, rng, 0.0f);  // zero weights
  // Weights are zero; output must equal bias (also zero).
  std::vector<float> out;
  layer.Forward({1.0f, 2.0f}, &out);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
}

/// Finite-difference gradient check for the whole MLP: perturb each
/// parameter, compare numeric dL/dw against the analytic accumulation,
/// with L = sum(out * coefficients).
TEST(MlpTest, GradientsMatchFiniteDifferences) {
  util::Rng rng(testhelpers::TestSeed(7));
  Mlp mlp("m", {3, 4, 2}, rng, Activation::kTanh, 0.5f);
  const std::vector<float> input = {0.3f, -0.7f, 1.1f};
  const std::vector<float> coeff = {1.0f, -2.0f};

  auto loss = [&]() {
    MlpContext ctx;
    const auto out = mlp.Forward(input, &ctx);
    return out[0] * coeff[0] + out[1] * coeff[1];
  };

  MlpContext ctx;
  mlp.Forward(input, &ctx);
  std::vector<float> din;
  mlp.Backward(ctx, coeff, &din);

  const float eps = 1e-3f;
  for (Parameter* p : mlp.Parameters()) {
    for (std::size_t i = 0; i < std::min<std::size_t>(p->value.size(), 8);
         ++i) {
      float* w = p->value.data() + i;
      const float original = *w;
      *w = original + eps;
      const float up = loss();
      *w = original - eps;
      const float down = loss();
      *w = original;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(p->grad.data()[i], numeric, 5e-2f)
          << p->name << "[" << i << "]";
    }
  }

  // Input gradient check.
  for (std::size_t i = 0; i < input.size(); ++i) {
    std::vector<float> perturbed = input;
    perturbed[i] += eps;
    MlpContext up_ctx;
    const auto up_out = mlp.Forward(perturbed, &up_ctx);
    perturbed[i] -= 2 * eps;
    MlpContext down_ctx;
    const auto down_out = mlp.Forward(perturbed, &down_ctx);
    const float numeric =
        ((up_out[0] - down_out[0]) * coeff[0] +
         (up_out[1] - down_out[1]) * coeff[1]) /
        (2.0f * eps);
    EXPECT_NEAR(din[i], numeric, 5e-2f) << "din[" << i << "]";
  }
}

TEST(MlpTest, ReluHiddenGradientsMatchFiniteDifferences) {
  util::Rng rng(testhelpers::TestSeed(11));
  Mlp mlp("m", {2, 5, 3}, rng, Activation::kRelu, 0.5f);
  const std::vector<float> input = {0.9f, -0.4f};
  const std::vector<float> coeff = {0.5f, 1.5f, -1.0f};

  auto loss = [&]() {
    MlpContext ctx;
    const auto out = mlp.Forward(input, &ctx);
    float total = 0.0f;
    for (std::size_t i = 0; i < out.size(); ++i) total += out[i] * coeff[i];
    return total;
  };

  MlpContext ctx;
  mlp.Forward(input, &ctx);
  mlp.Backward(ctx, coeff, nullptr);

  const float eps = 1e-3f;
  for (Parameter* p : mlp.Parameters()) {
    for (std::size_t i = 0; i < std::min<std::size_t>(p->value.size(), 6);
         ++i) {
      float* w = p->value.data() + i;
      const float original = *w;
      *w = original + eps;
      const float up = loss();
      *w = original - eps;
      const float down = loss();
      *w = original;
      EXPECT_NEAR(p->grad.data()[i], (up - down) / (2.0f * eps), 5e-2f)
          << p->name << "[" << i << "]";
    }
  }
}

TEST(RnnTest, EmptySequenceEncodesToZero) {
  util::Rng rng(testhelpers::TestSeed(3));
  RnnEncoder rnn("r", 4, 3, rng);
  RnnContext ctx;
  const auto hidden = rnn.Forward({}, &ctx);
  ASSERT_EQ(hidden.size(), 3U);
  for (const float h : hidden) EXPECT_FLOAT_EQ(h, 0.0f);
  // Backward on empty context must be a no-op (no crash, no grads).
  rnn.Backward(ctx, {1.0f, 1.0f, 1.0f});
  for (Parameter* p : rnn.Parameters()) {
    EXPECT_DOUBLE_EQ(p->grad.SquaredNorm(), 0.0);
  }
}

TEST(RnnTest, GradientsMatchFiniteDifferences) {
  util::Rng rng(testhelpers::TestSeed(5));
  RnnEncoder rnn("r", 3, 2, rng, 0.5f);
  const std::vector<std::vector<float>> sequence = {
      {0.1f, -0.2f, 0.3f}, {0.5f, 0.4f, -0.1f}, {-0.6f, 0.2f, 0.2f}};
  const std::vector<float> coeff = {1.0f, -1.5f};

  auto loss = [&]() {
    RnnContext ctx;
    const auto hidden = rnn.Forward(sequence, &ctx);
    return hidden[0] * coeff[0] + hidden[1] * coeff[1];
  };

  RnnContext ctx;
  rnn.Forward(sequence, &ctx);
  rnn.Backward(ctx, coeff);

  const float eps = 1e-3f;
  for (Parameter* p : rnn.Parameters()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      float* w = p->value.data() + i;
      const float original = *w;
      *w = original + eps;
      const float up = loss();
      *w = original - eps;
      const float down = loss();
      *w = original;
      EXPECT_NEAR(p->grad.data()[i], (up - down) / (2.0f * eps), 5e-2f)
          << p->name << "[" << i << "]";
    }
  }
}

TEST(OptimizerTest, SgdMovesAgainstGradient) {
  Parameter p("w", 1, 2);
  p.value(0, 0) = 1.0f;
  p.grad(0, 0) = 2.0f;
  Sgd sgd(0.1f);
  sgd.Step({&p});
  EXPECT_NEAR(p.value(0, 0), 0.8f, 1e-6f);
  // Gradient is consumed.
  EXPECT_FLOAT_EQ(p.grad(0, 0), 0.0f);
}

TEST(OptimizerTest, GlobalNormClipping) {
  Parameter p("w", 1, 2);
  p.grad(0, 0) = 3.0f;
  p.grad(0, 1) = 4.0f;  // norm 5
  ClipGradientsByGlobalNorm({&p}, 1.0f);
  EXPECT_NEAR(std::sqrt(p.grad.SquaredNorm()), 1.0, 1e-5);
  // Below the threshold: untouched.
  Parameter q("w2", 1, 1);
  q.grad(0, 0) = 0.5f;
  ClipGradientsByGlobalNorm({&q}, 1.0f);
  EXPECT_FLOAT_EQ(q.grad(0, 0), 0.5f);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2 with Adam; df/dw = 2(w - 3).
  Parameter p("w", 1, 1);
  p.value(0, 0) = -5.0f;
  Adam adam(0.1f);
  for (int step = 0; step < 500; ++step) {
    p.grad(0, 0) = 2.0f * (p.value(0, 0) - 3.0f);
    adam.Step({&p});
  }
  EXPECT_NEAR(p.value(0, 0), 3.0f, 0.05f);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  Parameter p("w", 1, 1);
  p.value(0, 0) = 10.0f;
  Sgd sgd(0.1f);
  for (int step = 0; step < 200; ++step) {
    p.grad(0, 0) = 2.0f * (p.value(0, 0) - 3.0f);
    sgd.Step({&p});
  }
  EXPECT_NEAR(p.value(0, 0), 3.0f, 1e-3f);
}

TEST(ReinforceTest, DiscountedReturns) {
  const auto returns = DiscountedReturns({1.0, 0.0, 2.0}, 0.5);
  ASSERT_EQ(returns.size(), 3U);
  EXPECT_DOUBLE_EQ(returns[2], 2.0);
  EXPECT_DOUBLE_EQ(returns[1], 1.0);
  EXPECT_DOUBLE_EQ(returns[0], 1.5);
}

TEST(ReinforceTest, DiscountedReturnsGammaZero) {
  const auto returns = DiscountedReturns({1.0, 2.0, 3.0}, 0.0);
  EXPECT_DOUBLE_EQ(returns[0], 1.0);
  EXPECT_DOUBLE_EQ(returns[1], 2.0);
  EXPECT_DOUBLE_EQ(returns[2], 3.0);
}

TEST(ReinforceTest, PolicyGradientLogitsShape) {
  const std::vector<float> probs = {0.2f, 0.3f, 0.5f};
  const auto d = PolicyGradientLogits(probs, 1, 2.0);
  // (p - onehot) * advantage
  EXPECT_NEAR(d[0], 0.4f, 1e-6f);
  EXPECT_NEAR(d[1], -1.4f, 1e-6f);
  EXPECT_NEAR(d[2], 1.0f, 1e-6f);
  // Gradient sums to zero over the simplex directions.
  EXPECT_NEAR(d[0] + d[1] + d[2], 0.0f, 1e-6f);
}

TEST(ReinforceTest, PolicyGradientRespectsMask) {
  const std::vector<float> probs = {0.0f, 0.4f, 0.6f};
  const auto d =
      PolicyGradientLogits(probs, 2, 1.0, {false, true, true});
  EXPECT_FLOAT_EQ(d[0], 0.0f);
  EXPECT_NEAR(d[1], 0.4f, 1e-6f);
  EXPECT_NEAR(d[2], -0.4f, 1e-6f);
}

TEST(ReinforceTest, EntropyBonusPushesTowardUniform) {
  // A peaked distribution should receive gradient that raises the small
  // probabilities' logits relative to the large one (loss -beta*H).
  const std::vector<float> probs = {0.9f, 0.05f, 0.05f};
  std::vector<float> d(3, 0.0f);
  AddEntropyBonusGrad(probs, 0.1, {true, true, true}, d);
  // Descending the loss (subtracting d) must increase entropy: the
  // dominant logit gets positive grad (is decreased), the tails negative.
  EXPECT_GT(d[0], 0.0f);
  EXPECT_LT(d[1], 0.0f);
}

TEST(ReinforceTest, MovingBaselineTracksReturns) {
  MovingBaseline baseline(0.5);
  EXPECT_DOUBLE_EQ(baseline.value(), 0.0);
  baseline.Update(1.0);
  EXPECT_DOUBLE_EQ(baseline.value(), 1.0);  // first observation initializes
  baseline.Update(3.0);
  EXPECT_DOUBLE_EQ(baseline.value(), 2.0);
  // Advantage is computed against the pre-update baseline.
  const double adv = baseline.Update(2.0);
  EXPECT_DOUBLE_EQ(adv, 0.0);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  util::Rng rng(testhelpers::TestSeed(19));
  Mlp mlp("s", {2, 3, 2}, rng, Activation::kRelu, 0.3f);
  const std::string path = testing::TempDir() + "/ca_params.bin";
  ASSERT_TRUE(SaveParameters(mlp.Parameters(), path));

  // Clone architecture, load, compare outputs.
  util::Rng rng2(testhelpers::TestSeed(999));
  Mlp copy("s", {2, 3, 2}, rng2, Activation::kRelu, 0.3f);
  ASSERT_TRUE(LoadParameters(copy.Parameters(), path));

  MlpContext ctx_a, ctx_b;
  const auto a = mlp.Forward({0.5f, -0.5f}, &ctx_a);
  const auto b = copy.Forward({0.5f, -0.5f}, &ctx_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsMismatchedArchitecture) {
  util::Rng rng(testhelpers::TestSeed(19));
  Mlp mlp("s", {2, 3, 2}, rng, Activation::kRelu, 0.3f);
  const std::string path = testing::TempDir() + "/ca_params2.bin";
  ASSERT_TRUE(SaveParameters(mlp.Parameters(), path));
  Mlp other("s", {2, 4, 2}, rng, Activation::kRelu, 0.3f);
  EXPECT_FALSE(LoadParameters(other.Parameters(), path));
  std::remove(path.c_str());
}

/// REINFORCE sanity: on a 3-armed bandit with deterministic rewards, the
/// policy should concentrate on the best arm.
TEST(ReinforceTest, LearnsBanditWithSoftmaxPolicy) {
  util::Rng rng(testhelpers::TestSeed(77));
  Mlp policy("bandit", {1, 8, 3}, rng, Activation::kTanh, 0.5f);
  Sgd sgd(0.2f);
  const std::vector<float> state = {1.0f};
  const std::vector<double> arm_rewards = {0.1, 0.9, 0.3};

  MovingBaseline baseline(0.8);
  for (int episode = 0; episode < 400; ++episode) {
    MlpContext ctx;
    std::vector<float> probs = policy.Forward(state, &ctx);
    math::SoftmaxInPlace(probs);
    const std::size_t action = math::SampleCategorical(probs, rng);
    const double reward = arm_rewards[action];
    const double advantage = reward - baseline.value();
    baseline.Update(reward);
    const auto dlogits = PolicyGradientLogits(probs, action, advantage);
    policy.Backward(ctx, dlogits, nullptr);
    sgd.Step(policy.Parameters());
  }

  MlpContext ctx;
  std::vector<float> probs = policy.Forward(state, &ctx);
  math::SoftmaxInPlace(probs);
  EXPECT_GT(probs[1], 0.8f) << "policy failed to learn the best arm";
}

}  // namespace
}  // namespace copyattack::nn

#include "nn/gru.h"

namespace copyattack::nn {
namespace {

TEST(GruTest, EmptySequenceEncodesToZero) {
  util::Rng rng(testhelpers::TestSeed(3));
  GruEncoder gru("g", 4, 3, rng);
  GruContext ctx;
  const auto hidden = gru.Forward({}, &ctx);
  ASSERT_EQ(hidden.size(), 3U);
  for (const float h : hidden) EXPECT_FLOAT_EQ(h, 0.0f);
  gru.Backward(ctx, {1.0f, 1.0f, 1.0f});
  for (Parameter* p : gru.Parameters()) {
    EXPECT_DOUBLE_EQ(p->grad.SquaredNorm(), 0.0);
  }
}

TEST(GruTest, HiddenStaysBounded) {
  util::Rng rng(testhelpers::TestSeed(5));
  GruEncoder gru("g", 3, 4, rng, 0.5f);
  std::vector<std::vector<float>> sequence;
  for (int t = 0; t < 50; ++t) {
    sequence.push_back({1.0f, -1.0f, 0.5f});
  }
  GruContext ctx;
  const auto hidden = gru.Forward(sequence, &ctx);
  for (const float h : hidden) {
    EXPECT_LE(std::abs(h), 1.0f) << "GRU hidden is a convex combination of "
                                    "tanh outputs, so |h| <= 1";
  }
}

TEST(GruTest, GradientsMatchFiniteDifferences) {
  util::Rng rng(testhelpers::TestSeed(7));
  GruEncoder gru("g", 3, 2, rng, 0.5f);
  const std::vector<std::vector<float>> sequence = {
      {0.1f, -0.2f, 0.3f}, {0.5f, 0.4f, -0.1f}, {-0.6f, 0.2f, 0.2f}};
  const std::vector<float> coeff = {1.0f, -1.5f};

  auto loss = [&]() {
    GruContext ctx;
    const auto hidden = gru.Forward(sequence, &ctx);
    return hidden[0] * coeff[0] + hidden[1] * coeff[1];
  };

  GruContext ctx;
  gru.Forward(sequence, &ctx);
  gru.Backward(ctx, coeff);

  const float eps = 1e-3f;
  for (Parameter* p : gru.Parameters()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      float* w = p->value.data() + i;
      const float original = *w;
      *w = original + eps;
      const float up = loss();
      *w = original - eps;
      const float down = loss();
      *w = original;
      EXPECT_NEAR(p->grad.data()[i], (up - down) / (2.0f * eps), 5e-2f)
          << p->name << "[" << i << "]";
    }
  }
}

TEST(GruTest, DeterministicForward) {
  util::Rng rng_a(testhelpers::TestSeed(9)), rng_b(testhelpers::TestSeed(9));
  GruEncoder a("g", 2, 3, rng_a);
  GruEncoder b("g", 2, 3, rng_b);
  GruContext ctx_a, ctx_b;
  const std::vector<std::vector<float>> seq = {{0.3f, 0.7f}, {-0.2f, 0.1f}};
  const auto ha = a.Forward(seq, &ctx_a);
  const auto hb = b.Forward(seq, &ctx_b);
  for (std::size_t i = 0; i < ha.size(); ++i) {
    EXPECT_FLOAT_EQ(ha[i], hb[i]);
  }
}

}  // namespace
}  // namespace copyattack::nn
