// Tests of the fault-tolerance subsystem (ISSUE 5): the deterministic
// FaultInjector decorator, the ResilientBlackBox retry/backoff/circuit-
// breaker client, and the attack environment's proxy-reward degradation
// while the oracle is unavailable.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/environment.h"
#include "core/runner.h"
#include "fault/crash_point.h"
#include "fault/fault_injector.h"
#include "fault/resilient_black_box.h"
#include "gtest/gtest.h"
#include "obs/time.h"
#include "rec/black_box.h"
#include "test_helpers.h"

namespace copyattack {
namespace {

using testhelpers::SharedTinyWorld;

/// Scripted in-memory oracle: answers every query with a fixed list and
/// fails on demand, so the decorators' behavior is fully controlled.
class FakeBlackBox : public rec::BlackBoxInterface {
 public:
  FakeBlackBox() : polluted_(8) {}

  rec::InjectResult Inject(data::Profile profile) override {
    ++inject_calls_;
    rec::InjectResult result;
    result.status = NextStatus();
    if (result.ok()) {
      result.user = polluted_.AddUser(std::move(profile));
      ++injected_profiles_;
    }
    return result;
  }

  rec::QueryResult Query(data::UserId /*user*/,
                         const std::vector<data::ItemId>& /*candidates*/,
                         std::size_t k) override {
    ++query_calls_;
    rec::QueryResult result;
    result.status = NextStatus();
    if (result.ok()) {
      for (std::size_t i = 0; i < k; ++i) {
        result.items.push_back(static_cast<data::ItemId>(serial_++ % 8));
      }
    }
    return result;
  }

  std::size_t query_count() const override { return query_calls_; }
  std::size_t injected_profiles() const override {
    return injected_profiles_;
  }
  std::size_t injected_interactions() const override { return 0; }
  void ResetCounters() override {}
  const data::Dataset& polluted() const override { return polluted_; }

  /// Statuses returned by upcoming operations, consumed front to back;
  /// once the script runs out, everything succeeds.
  void Script(std::deque<rec::BlackBoxStatus> statuses) {
    script_ = std::move(statuses);
  }
  void FailAlways(rec::BlackBoxStatus status) {
    fail_always_ = true;
    fail_status_ = status;
  }
  void Recover() {
    fail_always_ = false;
    script_.clear();
  }

  std::size_t inject_calls() const { return inject_calls_; }
  std::size_t query_calls() const { return query_calls_; }

 private:
  rec::BlackBoxStatus NextStatus() {
    if (fail_always_) return fail_status_;
    if (script_.empty()) return rec::BlackBoxStatus::kOk;
    const rec::BlackBoxStatus status = script_.front();
    script_.pop_front();
    return status;
  }

  data::Dataset polluted_;
  std::deque<rec::BlackBoxStatus> script_;
  bool fail_always_ = false;
  rec::BlackBoxStatus fail_status_ = rec::BlackBoxStatus::kTransientError;
  std::size_t inject_calls_ = 0;
  std::size_t query_calls_ = 0;
  std::size_t injected_profiles_ = 0;
  std::size_t serial_ = 0;
};

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjectorTest, DisabledScheduleIsTransparent) {
  FakeBlackBox inner;
  fault::FaultScheduleConfig config;  // enabled = false
  fault::FaultInjector injector(&inner, config);
  EXPECT_TRUE(injector.Inject({0, 1, 2}).ok());
  const auto query = injector.Query(0, {0, 1, 2, 3}, 3);
  EXPECT_TRUE(query.ok());
  EXPECT_EQ(query.items.size(), 3U);
  EXPECT_EQ(injector.counts().TotalFired(), 0U);
  EXPECT_EQ(injector.injected_profiles(), 1U);
}

TEST(FaultInjectorTest, SameSeedSameScheduleIsBitIdentical) {
  const auto config = fault::FaultScheduleConfig::Aggressive(99);
  std::vector<rec::BlackBoxStatus> run_a, run_b;
  std::vector<std::vector<data::ItemId>> items_a, items_b;
  for (int run = 0; run < 2; ++run) {
    FakeBlackBox inner;
    fault::FaultInjector injector(&inner, config);
    auto& statuses = run == 0 ? run_a : run_b;
    auto& items = run == 0 ? items_a : items_b;
    for (int i = 0; i < 64; ++i) {
      statuses.push_back(injector.Inject({0, 1}).status);
      const auto query = injector.Query(0, {0, 1, 2, 3, 4}, 4);
      statuses.push_back(query.status);
      items.push_back(query.items);
    }
  }
  EXPECT_EQ(run_a, run_b);
  EXPECT_EQ(items_a, items_b);
}

TEST(FaultInjectorTest, AggressiveScheduleFiresEveryFaultClass) {
  FakeBlackBox inner;
  fault::FaultInjector injector(&inner,
                                fault::FaultScheduleConfig::Aggressive(7));
  for (int i = 0; i < 400; ++i) {
    injector.Inject({0, 1, 2});
    injector.Query(static_cast<data::UserId>(i % 3), {0, 1, 2, 3, 4}, 4);
  }
  const fault::FaultCounts& counts = injector.counts();
  EXPECT_GT(counts.query_transient, 0U);
  EXPECT_GT(counts.query_timeout, 0U);
  EXPECT_GT(counts.query_rate_limited, 0U);
  EXPECT_GT(counts.query_stale, 0U);
  EXPECT_GT(counts.query_truncated, 0U);
  EXPECT_GT(counts.inject_transient, 0U);
  EXPECT_GT(counts.inject_dropped, 0U);
}

TEST(FaultInjectorTest, TruncationKeepsAtLeastOneItem) {
  FakeBlackBox inner;
  fault::FaultScheduleConfig config;
  config.enabled = true;
  config.seed = 5;
  config.truncate_rate = 1.0;
  config.truncate_keep_fraction = 0.5;
  fault::FaultInjector injector(&inner, config);
  const auto query = injector.Query(0, {0, 1, 2, 3, 4, 5}, 6);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.items.size(), 3U);
  // keep_fraction of a 1-item list still returns one item.
  config.truncate_keep_fraction = 0.01;
  fault::FaultInjector tiny(&inner, config);
  const auto one = tiny.Query(0, {0, 1}, 1);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.items.size(), 1U);
}

TEST(FaultInjectorTest, StaleSnapshotServesPreviousList) {
  FakeBlackBox inner;
  fault::FaultScheduleConfig config;
  config.enabled = true;
  config.seed = 5;
  config.stale_topk_rate = 1.0;
  fault::FaultInjector injector(&inner, config);
  // First query: no snapshot yet, the fresh list is served and cached.
  const auto first = injector.Query(0, {0, 1, 2, 3}, 3);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(injector.counts().query_stale, 0U);
  // Second query: the fresh inner list differs (FakeBlackBox serial
  // counter), but the stale fault returns the first list.
  const auto second = injector.Query(0, {0, 1, 2, 3}, 3);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.items, first.items);
  EXPECT_EQ(injector.counts().query_stale, 1U);
  // A different user has no snapshot.
  const auto other = injector.Query(1, {0, 1, 2, 3}, 3);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other.items, first.items);
}

TEST(FaultInjectorTest, SilentDropAcksWithoutLanding) {
  FakeBlackBox inner;
  fault::FaultScheduleConfig config;
  config.enabled = true;
  config.seed = 5;
  config.inject_drop_rate = 1.0;
  fault::FaultInjector injector(&inner, config);
  const auto result = injector.Inject({0, 1, 2});
  EXPECT_TRUE(result.ok()) << "silent drop must look like success";
  EXPECT_NE(result.user, data::kNoUser);
  EXPECT_EQ(inner.inject_calls(), 0U) << "nothing reached the oracle";
  EXPECT_EQ(injector.injected_profiles(), 0U);
  EXPECT_EQ(injector.counts().inject_dropped, 1U);
}

// ---------------------------------------------------------------------------
// ResilientBlackBox

TEST(ResilientBlackBoxTest, RetriesThroughTransientFailures) {
  FakeBlackBox inner;
  inner.Script({rec::BlackBoxStatus::kTransientError,
                rec::BlackBoxStatus::kTimeout});
  fault::ResilienceConfig config;
  config.enabled = true;
  config.retry.max_attempts = 4;
  fault::ResilientBlackBox client(&inner, config);
  const auto result = client.Query(0, {0, 1, 2}, 2);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(inner.query_calls(), 3U);  // two failures + one success
  EXPECT_EQ(client.stats().retries, 2U);
  EXPECT_EQ(client.stats().retry_exhausted, 0U);
  EXPECT_GT(client.stats().total_backoff_us, 0U);
}

TEST(ResilientBlackBoxTest, RetryExhaustionReportsUnavailable) {
  FakeBlackBox inner;
  inner.FailAlways(rec::BlackBoxStatus::kTransientError);
  fault::ResilienceConfig config;
  config.enabled = true;
  config.retry.max_attempts = 3;
  config.breaker.failure_threshold = 100;  // keep the breaker out of it
  fault::ResilientBlackBox client(&inner, config);
  const auto result = client.Query(0, {0, 1, 2}, 2);
  EXPECT_EQ(result.status, rec::BlackBoxStatus::kUnavailable);
  EXPECT_EQ(inner.query_calls(), 3U);
  EXPECT_EQ(client.stats().retries, 2U);
  EXPECT_EQ(client.stats().retry_exhausted, 1U);
}

TEST(ResilientBlackBoxTest, RetryingAnInjectResendsTheFullProfile) {
  FakeBlackBox inner;
  inner.Script({rec::BlackBoxStatus::kTransientError});
  fault::ResilienceConfig config;
  config.enabled = true;
  fault::ResilientBlackBox client(&inner, config);
  const auto result = client.Inject({3, 4, 5});
  ASSERT_TRUE(result.ok());
  // The retried attempt must deliver the same payload, not a moved-from
  // husk of the first attempt.
  EXPECT_EQ(client.polluted().UserProfile(result.user),
            (data::Profile{3, 4, 5}));
}

TEST(ResilientBlackBoxTest, BackoffGrowsExponentiallyUnderVirtualClock) {
  FakeBlackBox inner;
  inner.FailAlways(rec::BlackBoxStatus::kRateLimited);
  fault::ResilienceConfig config;
  config.enabled = true;
  config.retry.max_attempts = 4;
  config.retry.initial_backoff_us = 1000;
  config.retry.backoff_multiplier = 2.0;
  config.retry.jitter = 0.0;  // exact expectations
  config.breaker.failure_threshold = 100;
  config.virtual_op_cost_us = 0;
  fault::ResilientBlackBox client(&inner, config);
  client.Query(0, {0}, 1);
  // Waits: 1000 + 2000 + ... for max_attempts-1 = 3 retries.
  EXPECT_EQ(client.stats().total_backoff_us, 1000U + 2000U + 4000U);
  EXPECT_EQ(client.virtual_now_us(), 7000U);
}

TEST(ResilientBlackBoxTest, NonRetryableStatusFailsFast) {
  FakeBlackBox inner;
  inner.FailAlways(rec::BlackBoxStatus::kUnavailable);
  fault::ResilienceConfig config;
  config.enabled = true;
  fault::ResilientBlackBox client(&inner, config);
  const auto result = client.Query(0, {0}, 1);
  EXPECT_EQ(result.status, rec::BlackBoxStatus::kUnavailable);
  EXPECT_EQ(inner.query_calls(), 1U);
  EXPECT_EQ(client.stats().retries, 0U);
}

TEST(ResilientBlackBoxTest, BreakerTripsHalfOpensAndCloses) {
  FakeBlackBox inner;
  inner.FailAlways(rec::BlackBoxStatus::kTransientError);
  fault::ResilienceConfig config;
  config.enabled = true;
  config.retry.max_attempts = 1;  // every failed op is one failure
  config.breaker.failure_threshold = 2;
  config.breaker.open_duration_us = 50000;
  config.breaker.half_open_successes = 1;
  config.virtual_op_cost_us = 10000;
  fault::ResilientBlackBox client(&inner, config);

  client.Query(0, {0}, 1);
  EXPECT_EQ(client.breaker_state(), fault::BreakerState::kClosed);
  client.Query(0, {0}, 1);  // second consecutive failure trips it
  EXPECT_EQ(client.breaker_state(), fault::BreakerState::kOpen);
  EXPECT_EQ(client.stats().breaker_trips, 1U);

  // While open (and young), calls are rejected without touching the
  // oracle; the virtual clock still advances toward the cool-down.
  const std::size_t calls_before = inner.query_calls();
  for (int i = 0; i < 4; ++i) {
    const auto rejected = client.Query(0, {0}, 1);
    EXPECT_EQ(rejected.status, rec::BlackBoxStatus::kUnavailable);
  }
  EXPECT_EQ(inner.query_calls(), calls_before);
  EXPECT_EQ(client.stats().short_circuited, 4U);

  // Cool-down elapsed: the next call is a half-open probe — it actually
  // reaches the oracle. It fails (and with max_attempts = 1 exhaustion
  // rewrites the status to kUnavailable), so the breaker reopens.
  const auto probe = client.Query(0, {0}, 1);
  EXPECT_EQ(probe.status, rec::BlackBoxStatus::kUnavailable);
  EXPECT_EQ(inner.query_calls(), calls_before + 1);
  EXPECT_EQ(client.breaker_state(), fault::BreakerState::kOpen);
  EXPECT_EQ(client.stats().breaker_reopens, 1U);

  // Oracle recovers; once the new cool-down elapses a successful probe
  // closes the breaker.
  inner.Recover();
  while (client.breaker_state() != fault::BreakerState::kClosed) {
    client.Query(0, {0}, 1);
  }
  EXPECT_EQ(client.stats().breaker_closes, 1U);
  EXPECT_TRUE(client.Query(0, {0}, 1).ok());
}

namespace clockns {
std::int64_t fake_nanos = 0;
std::int64_t FakeNanos() { return fake_nanos; }
}  // namespace clockns

TEST(ResilientBlackBoxTest, MonotonicClockModeUsesObsTimeSource) {
  obs::SetMonotonicSourceForTest(&clockns::FakeNanos);
  clockns::fake_nanos = 0;
  FakeBlackBox inner;
  inner.FailAlways(rec::BlackBoxStatus::kTimeout);
  fault::ResilienceConfig config;
  config.enabled = true;
  config.clock = fault::ClockMode::kMonotonic;
  config.retry.max_attempts = 1;
  config.breaker.failure_threshold = 1;
  config.breaker.open_duration_us = 1000;
  config.breaker.half_open_successes = 1;
  fault::ResilientBlackBox client(&inner, config);

  client.Query(0, {0}, 1);  // trips at fake time 0
  EXPECT_EQ(client.breaker_state(), fault::BreakerState::kOpen);
  EXPECT_EQ(client.Query(0, {0}, 1).status,
            rec::BlackBoxStatus::kUnavailable);

  clockns::fake_nanos = 2000 * 1000;  // 2000 us > open_duration
  inner.Recover();
  EXPECT_TRUE(client.Query(0, {0}, 1).ok());
  EXPECT_EQ(client.breaker_state(), fault::BreakerState::kClosed);
  obs::SetMonotonicSourceForTest(nullptr);
}

TEST(ResilientBlackBoxTest, DisabledConfigIsTransparent) {
  FakeBlackBox inner;
  inner.FailAlways(rec::BlackBoxStatus::kTransientError);
  fault::ResilienceConfig config;  // enabled = false
  fault::ResilientBlackBox client(&inner, config);
  const auto result = client.Query(0, {0}, 1);
  EXPECT_EQ(result.status, rec::BlackBoxStatus::kTransientError);
  EXPECT_EQ(inner.query_calls(), 1U);
  EXPECT_EQ(client.stats().retries, 0U);
}

// ---------------------------------------------------------------------------
// Environment integration

core::EnvConfig FaultyEnvConfig() {
  core::EnvConfig config;
  config.budget = 6;
  config.num_pretend_users = 4;
  config.query_interval = 2;
  config.query_candidates = 20;
  return config;
}

TEST(EnvironmentFaultTest, QueryRewardFallsBackToProxyWhileOracleDown) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model(tw.model);
  core::EnvConfig config = FaultyEnvConfig();
  // Every query fails; the resilient client exhausts its retries and the
  // breaker opens, so every reward round must degrade to the proxy
  // estimate instead of aborting the episode.
  config.fault.enabled = true;
  config.fault.seed = 3;
  config.fault.query_transient_rate = 1.0;
  config.resilience.enabled = true;
  config.resilience.retry.max_attempts = 2;
  core::AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                              config);
  env.Reset(tw.cold_target);
  std::size_t rounds = 0;
  while (!env.done()) {
    const auto step = env.Step({0, 1, 2});
    if (step.queried) ++rounds;
  }
  EXPECT_GT(rounds, 0U);
  EXPECT_EQ(env.proxy_reward_fallbacks(), rounds);
  ASSERT_NE(env.resilient(), nullptr);
  EXPECT_GT(env.resilient()->stats().retry_exhausted +
                env.resilient()->stats().short_circuited,
            0U);
}

TEST(EnvironmentFaultTest, FaultStackAbsentWhenDisabled) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model(tw.model);
  core::AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                              FaultyEnvConfig());
  env.Reset(tw.cold_target);
  EXPECT_EQ(env.fault_injector(), nullptr);
  EXPECT_EQ(env.resilient(), nullptr);
}

TEST(EnvironmentFaultTest, CampaignUnderFaultsIsDeterministic) {
  // Acceptance criterion: same seed + same fault schedule ⇒ bit-identical
  // campaign outcome, because the fault and jitter streams depend only on
  // (seed, call index), never on wall time.
  const auto& tw = SharedTinyWorld();
  core::CampaignConfig campaign;
  campaign.env = FaultyEnvConfig();
  campaign.env.fault = fault::FaultScheduleConfig::Aggressive(11);
  campaign.env.resilience.enabled = true;
  campaign.episodes = 2;
  campaign.eval_users = 30;
  campaign.eval_negatives = 40;
  campaign.seed = 5;
  util::Rng target_rng(testhelpers::TestSeed(73));
  const auto targets =
      data::SampleColdTargetItems(tw.world.dataset, 2, 10, target_rng);
  const core::StrategyFactory factory = [&](std::uint64_t) {
    return std::make_unique<core::TargetAttack>(tw.world.dataset, 0.7);
  };
  const auto a = core::RunCampaign(tw.world.dataset, tw.split.train,
                                   tw.ModelFactory(), factory, targets,
                                   campaign);
  const auto b = core::RunCampaign(tw.world.dataset, tw.split.train,
                                   tw.ModelFactory(), factory, targets,
                                   campaign);
  EXPECT_DOUBLE_EQ(a.metrics.at(20).hr, b.metrics.at(20).hr);
  EXPECT_DOUBLE_EQ(a.metrics.at(5).ndcg, b.metrics.at(5).ndcg);
  EXPECT_DOUBLE_EQ(a.avg_items_per_profile, b.avg_items_per_profile);
  EXPECT_DOUBLE_EQ(a.avg_final_reward, b.avg_final_reward);
}

// ---------------------------------------------------------------------------
// Deterministic crash points (ISSUE 10).

/// Always leave the process-global schedule disarmed, even on failure.
struct CrashScheduleGuard {
  ~CrashScheduleGuard() { fault::DisarmCrashSchedule(); }
};

TEST(CrashPointTest, DisarmedSitesAreFreeAndUncounted) {
  CrashScheduleGuard guard;
  ASSERT_FALSE(fault::CrashScheduleArmed());
  CA_CRASH_POINT("test.site_a");
  CA_CRASH_POINT("test.site_b");
  EXPECT_EQ(fault::CrashPointHits(), 0U);
}

TEST(CrashPointTest, CountOnlyScheduleCountsAndTracesEveryHit) {
  CrashScheduleGuard guard;
  const std::string trace =
      (std::filesystem::path(::testing::TempDir()) / "crash_trace.txt")
          .string();
  std::filesystem::remove(trace);
  fault::CrashScheduleConfig schedule;
  schedule.enabled = true;
  schedule.at_hit = 0;  // count/trace only, never fire
  schedule.trace_path = trace;
  fault::ArmCrashSchedule(schedule);
  CA_CRASH_POINT("test.alpha");
  CA_CRASH_POINT("test.beta");
  CA_CRASH_POINT("test.alpha");
  EXPECT_EQ(fault::CrashPointHits(), 3U);
  fault::DisarmCrashSchedule();

  std::ifstream in(trace);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3U);
  EXPECT_EQ(lines[0], "test.alpha");
  EXPECT_EQ(lines[1], "test.beta");
  EXPECT_EQ(lines[2], "test.alpha");
}

TEST(CrashPointTest, SiteFilteredScheduleIndexesMatchingHitsOnly) {
  // at_hit counts hits OF THE NAMED SITE: the second beta must fire even
  // though alphas are interleaved before and between them.
  CrashScheduleGuard guard;
  fault::CrashScheduleConfig schedule;
  schedule.enabled = true;
  schedule.mode = fault::CrashMode::kThrow;
  schedule.site = "test.beta";
  schedule.at_hit = 2;
  fault::ArmCrashSchedule(schedule);
  CA_CRASH_POINT("test.alpha");
  CA_CRASH_POINT("test.beta");
  CA_CRASH_POINT("test.alpha");
  try {
    CA_CRASH_POINT("test.beta");
    FAIL() << "second test.beta hit did not fire";
  } catch (const fault::CrashForTest& crash) {
    EXPECT_EQ(crash.site, "test.beta");
    EXPECT_EQ(crash.hit, 4U);  // global hit index, for log correlation
  }
}

TEST(CrashPointTest, ThrowModeIsOneShot) {
  CrashScheduleGuard guard;
  fault::CrashScheduleConfig schedule;
  schedule.enabled = true;
  schedule.mode = fault::CrashMode::kThrow;
  schedule.at_hit = 1;
  fault::ArmCrashSchedule(schedule);
  EXPECT_THROW(CA_CRASH_POINT("test.once"), fault::CrashForTest);
  // Disarmed before the throw: recovery code re-entering the same site
  // (the post-crash checkpoint save) must run to completion.
  EXPECT_FALSE(fault::CrashScheduleArmed());
  CA_CRASH_POINT("test.once");  // must not fire again
}

TEST(CrashPointTest, EnvArmingParsesSiteCountModeAndTrace) {
  CrashScheduleGuard guard;
  ::setenv("COPYATTACK_CRASH_POINT", "serve.job_begin:3", 1);
  ::setenv("COPYATTACK_CRASH_MODE", "throw", 1);
  EXPECT_TRUE(fault::ArmCrashScheduleFromEnv());
  EXPECT_TRUE(fault::CrashScheduleArmed());
  CA_CRASH_POINT("serve.job_begin");
  CA_CRASH_POINT("serve.job_begin");
  EXPECT_THROW(CA_CRASH_POINT("serve.job_begin"), fault::CrashForTest);

  // ":N" (any site) and bare "N" both parse; garbage does not arm.
  ::setenv("COPYATTACK_CRASH_POINT", ":5", 1);
  EXPECT_TRUE(fault::ArmCrashScheduleFromEnv());
  fault::DisarmCrashSchedule();
  ::setenv("COPYATTACK_CRASH_POINT", "7", 1);
  EXPECT_TRUE(fault::ArmCrashScheduleFromEnv());
  fault::DisarmCrashSchedule();
  ::setenv("COPYATTACK_CRASH_POINT", "site:notanumber", 1);
  EXPECT_FALSE(fault::ArmCrashScheduleFromEnv());
  EXPECT_FALSE(fault::CrashScheduleArmed());
  ::unsetenv("COPYATTACK_CRASH_POINT");
  ::unsetenv("COPYATTACK_CRASH_MODE");
  EXPECT_FALSE(fault::ArmCrashScheduleFromEnv());
}

}  // namespace
}  // namespace copyattack
