#include <gtest/gtest.h>

#include "core/environment.h"
#include "rec/pinsage_lite.h"
#include "test_helpers.h"
#include "test_seed.h"

namespace copyattack::core {
namespace {

using testhelpers::SharedTinyWorld;

EnvConfig SmallEnvConfig() {
  EnvConfig config;
  config.budget = 6;
  config.query_interval = 3;
  config.num_pretend_users = 10;
  config.reward_k = 20;
  config.query_candidates = 50;
  config.seed = 7;
  return config;
}

data::Profile MakeAttackProfile(const data::CrossDomainDataset& dataset,
                                data::ItemId target) {
  const auto& holders = dataset.SourceHolders(target);
  return dataset.source.UserProfile(holders[0]);
}

TEST(EnvironmentTest, ResetAddsPretendUsersOnly) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  env.Reset(tw.cold_target);
  EXPECT_EQ(env.black_box().polluted().num_users(),
            tw.split.train.num_users() + 10);
  EXPECT_EQ(env.black_box().injected_profiles(), 0U);
  EXPECT_FALSE(env.done());
  EXPECT_EQ(env.pretend_users().size(), 10U);
}

TEST(EnvironmentTest, PretendUsersNeverHoldTargetItem) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  env.Reset(tw.cold_target);
  for (const data::UserId user : env.pretend_users()) {
    EXPECT_FALSE(
        env.black_box().polluted().HasInteraction(user, tw.cold_target));
  }
}

TEST(EnvironmentTest, QueryCadenceEveryThirdInjection) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  env.Reset(tw.cold_target);

  const data::Profile profile =
      MakeAttackProfile(tw.world.dataset, tw.cold_target);
  // With query_interval 3: steps 1,2 no query; step 3 queries.
  data::Profile p1 = profile;
  auto r1 = env.Step(std::move(p1));
  EXPECT_FALSE(r1.queried);
  data::Profile p2 = profile;
  // Profiles must be unique per injected user? No — duplicates across
  // users are allowed; each injection creates a new user.
  auto r2 = env.Step(std::move(p2));
  EXPECT_FALSE(r2.queried);
  data::Profile p3 = profile;
  auto r3 = env.Step(std::move(p3));
  EXPECT_TRUE(r3.queried);
}

TEST(EnvironmentTest, BudgetTerminatesEpisode) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  env.Reset(tw.cold_target);
  const data::Profile profile =
      MakeAttackProfile(tw.world.dataset, tw.cold_target);
  AttackEnvironment::StepResult last;
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(env.done());
    data::Profile p = profile;
    last = env.Step(std::move(p));
  }
  EXPECT_TRUE(env.done());
  EXPECT_TRUE(last.done);
  // The final step always queries (reward for the terminal state).
  EXPECT_TRUE(last.queried);
  EXPECT_EQ(env.black_box().injected_profiles(), 6U);
}

TEST(EnvironmentTest, ResetClearsInjections) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  env.Reset(tw.cold_target);
  data::Profile p = MakeAttackProfile(tw.world.dataset, tw.cold_target);
  env.Step(std::move(p));
  EXPECT_EQ(env.black_box().injected_profiles(), 1U);

  env.Reset(tw.cold_target);
  EXPECT_EQ(env.black_box().injected_profiles(), 0U);
  EXPECT_EQ(env.black_box().polluted().num_users(),
            tw.split.train.num_users() + 10);
  EXPECT_FALSE(env.done());
}

TEST(EnvironmentTest, RewardIsInUnitInterval) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  env.Reset(tw.cold_target);
  const double reward = env.QueryReward();
  EXPECT_GE(reward, 0.0);
  EXPECT_LE(reward, 1.0);
}

TEST(EnvironmentTest, InjectionIncreasesPretendReward) {
  // Inject many profiles holding the target item; reward over pretend
  // users should not decrease relative to the clean state. With only 10
  // pretend users the reward is quantized in steps of 0.1, and under a
  // COPYATTACK_TEST_SEED reseed a single pretend user can legitimately
  // flip rank, so allow at most one quantum of regression.
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  EnvConfig config = SmallEnvConfig();
  config.budget = 12;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model, config);
  env.Reset(tw.cold_target);
  const double before = env.QueryReward();

  const auto& holders = tw.world.dataset.SourceHolders(tw.cold_target);
  std::size_t injected = 0;
  for (const data::UserId holder : holders) {
    if (env.done()) break;
    env.Step(tw.world.dataset.source.UserProfile(holder));
    ++injected;
  }
  ASSERT_GT(injected, 0U);
  const double after = env.QueryReward();
  const double quantum = 1.0 / static_cast<double>(config.num_pretend_users);
  EXPECT_GE(after, before - quantum - 1e-12);
}

TEST(EnvironmentTest, EvaluateRealPromotionDeterministic) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model_a = tw.model;
  AttackEnvironment env_a(tw.world.dataset, tw.split.train, &model_a,
                          SmallEnvConfig());
  env_a.Reset(tw.cold_target);
  const auto metrics_a = env_a.EvaluateRealPromotion({20, 10}, 50, 50);

  rec::PinSageLite model_b = tw.model;
  AttackEnvironment env_b(tw.world.dataset, tw.split.train, &model_b,
                          SmallEnvConfig());
  env_b.Reset(tw.cold_target);
  const auto metrics_b = env_b.EvaluateRealPromotion({20, 10}, 50, 50);

  EXPECT_DOUBLE_EQ(metrics_a.at(20).hr, metrics_b.at(20).hr);
  EXPECT_DOUBLE_EQ(metrics_a.at(10).ndcg, metrics_b.at(10).ndcg);
}

TEST(EnvironmentTest, LifetimeQueriesAccumulateAcrossResets) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  env.Reset(tw.cold_target);
  env.QueryReward();
  env.Reset(tw.cold_target);
  env.QueryReward();
  EXPECT_EQ(env.lifetime_queries(), 2U);
}

TEST(EnvironmentDeathTest, StepBeforeResetAborts) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        SmallEnvConfig());
  EXPECT_DEATH(env.Step({0, 1}), "CHECK failed");
}

}  // namespace
}  // namespace copyattack::core

namespace copyattack::core {
namespace {

TEST(EnvironmentTest, QueryBudgetTerminatesEpisode) {
  const auto& tw = testhelpers::SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  EnvConfig config;
  config.budget = 30;
  config.query_interval = 3;
  config.num_pretend_users = 8;
  config.query_candidates = 40;
  config.max_query_rounds = 2;  // ends after the 2nd query round
  config.seed = 7;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model, config);
  env.Reset(tw.cold_target);

  const auto& holders = tw.world.dataset.SourceHolders(tw.cold_target);
  std::size_t steps = 0;
  util::Rng rng(testhelpers::TestSeed(3));
  while (!env.done()) {
    const data::UserId holder =
        holders[rng.UniformUint64(holders.size())];
    env.Step(tw.world.dataset.source.UserProfile(holder));
    ++steps;
    ASSERT_LE(steps, 30U);
  }
  // 2 query rounds x interval 3 = 6 injections, well under the budget.
  EXPECT_EQ(steps, 6U);
}

/// Property sweep: the number of query rounds in one full-budget episode
/// is ceil(budget / interval) for every (budget, interval) combination.
class QueryCadenceProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(QueryCadenceProperty, RoundsMatchFormula) {
  const auto [budget, interval] = GetParam();
  const auto& tw = testhelpers::SharedTinyWorld();
  rec::PinSageLite model = tw.model;
  EnvConfig config;
  config.budget = budget;
  config.query_interval = interval;
  config.num_pretend_users = 5;
  config.query_candidates = 30;
  config.seed = 7;
  // The cadence formula assumes a full-budget episode; disable the
  // early-success cutoff so a lucky reseed (COPYATTACK_TEST_SEED) cannot
  // end the episode after one query round.
  config.success_reward = 1.1;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model, config);
  env.Reset(tw.cold_target);

  const auto& holders = tw.world.dataset.SourceHolders(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  std::size_t query_rounds = 0;
  while (!env.done()) {
    const data::UserId holder =
        holders[rng.UniformUint64(holders.size())];
    const auto result =
        env.Step(tw.world.dataset.source.UserProfile(holder));
    if (result.queried) ++query_rounds;
  }
  // Query at every full interval plus the terminal step; steps at both a
  // full interval and the budget count once.
  const std::size_t expected =
      budget / interval + (budget % interval == 0 ? 0 : 1);
  EXPECT_EQ(query_rounds, expected)
      << "budget=" << budget << " interval=" << interval;
}

INSTANTIATE_TEST_SUITE_P(
    Cadences, QueryCadenceProperty,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(6, 3),
                      std::make_pair<std::size_t, std::size_t>(7, 3),
                      std::make_pair<std::size_t, std::size_t>(9, 2),
                      std::make_pair<std::size_t, std::size_t>(5, 1),
                      std::make_pair<std::size_t, std::size_t>(10, 4),
                      std::make_pair<std::size_t, std::size_t>(3, 5)));

}  // namespace
}  // namespace copyattack::core
