// Unit tests for the observability subsystem (src/obs): sharded counters
// and histograms (including exact sums under concurrent ParallelFor
// increments), interpolated percentile math against a known uniform
// distribution, trace-span recording/ring semantics, and bit-exact
// round-trips through the CSV and JSON exporters.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace copyattack {
namespace {

// Every test must leave telemetry disabled — that is the process-wide
// default the rest of the suite (and the perf numbers) relies on.
class ObsTest : public testing::Test {
 protected:
  void TearDown() override {
    obs::SetEnabled(false);
    obs::TraceRecorder::Global().Clear();
  }
};

// --- counters & gauges -----------------------------------------------------

TEST_F(ObsTest, CounterAddsAndResets) {
  obs::Counter counter;
  EXPECT_EQ(counter.Value(), 0U);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42U);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0U);
}

TEST_F(ObsTest, GaugeIsLastWriterWins) {
  obs::Gauge gauge;
  gauge.Set(7);
  gauge.Set(-3);
  EXPECT_EQ(gauge.Value(), -3);
  gauge.Add(5);
  EXPECT_EQ(gauge.Value(), 2);
}

// Concurrent increments from a ParallelFor must sum exactly: the sharded
// cells are atomic, so no increment may be lost (TSan-clean by design —
// check_all runs this suite under the tsan preset via the unit label).
TEST_F(ObsTest, CounterSumsExactlyUnderParallelFor) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.GetCounter("test.parallel");
  constexpr std::size_t kItems = 4096;
  constexpr std::uint64_t kPerItem = 3;
  util::ThreadPool::ParallelFor(kItems, 8, [&](std::size_t) {
    counter.Add(kPerItem);
  });
  EXPECT_EQ(counter.Value(), kItems * kPerItem);
}

TEST_F(ObsTest, HistogramCountsExactlyUnderParallelFor) {
  obs::Histogram histogram({1.0, 2.0, 4.0});
  constexpr std::size_t kItems = 2048;
  util::ThreadPool::ParallelFor(kItems, 8, [&](std::size_t i) {
    histogram.Observe(static_cast<double>(i % 5));
  });
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, kItems);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : snapshot.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, kItems);
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kItems; ++i) {
    expected_sum += static_cast<double>(i % 5);
  }
  EXPECT_DOUBLE_EQ(snapshot.sum, expected_sum);
}

// --- histogram percentile math ---------------------------------------------

// Uniform 1..1000 into decile buckets: every percentile is exactly
// recoverable by linear interpolation inside the containing bucket.
TEST_F(ObsTest, PercentilesInterpolateKnownUniformDistribution) {
  std::vector<double> bounds;
  for (int b = 100; b <= 1000; b += 100) bounds.push_back(b);
  obs::Histogram histogram(bounds);
  for (int v = 1; v <= 1000; ++v) histogram.Observe(v);

  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1000U);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 500.5);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.50), 500.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.95), 950.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.99), 990.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(1.0), 1000.0);
}

TEST_F(ObsTest, PercentileEdgeCases) {
  obs::Histogram histogram({10.0, 20.0});
  EXPECT_DOUBLE_EQ(histogram.Snapshot().Percentile(0.5), 0.0);  // empty

  histogram.Observe(5.0);   // first bucket: interpolates from lower edge 0
  histogram.Observe(999.0);  // overflow bucket: clamps to the last bound
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.counts.front(), 1U);
  EXPECT_EQ(snapshot.counts.back(), 1U);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(1.0), 20.0);
}

// --- registry --------------------------------------------------------------

TEST_F(ObsTest, RegistryHandlesAreStableAndResettable) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.GetCounter("x.count");
  obs::Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);  // one instance per name
  a.Add(3);
  registry.GetGauge("x.gauge").Set(9);
  registry.GetHistogram("x.hist", {1.0, 2.0}).Observe(1.5);

  obs::MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1U);
  EXPECT_EQ(snapshot.counters[0].first, "x.count");
  EXPECT_EQ(snapshot.counters[0].second, 3U);
  ASSERT_EQ(snapshot.histograms.size(), 1U);
  EXPECT_EQ(snapshot.histograms[0].name, "x.hist");

  registry.ResetAll();
  EXPECT_EQ(a.Value(), 0U);  // handle still valid after reset
  snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters[0].second, 0U);
}

// The OBS_* macros mutate only while telemetry is enabled; the disabled
// default must leave the global registry untouched.
TEST_F(ObsTest, MacrosAreInertWhileDisabled) {
#if !defined(COPYATTACK_OBS_DISABLED)
  obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("obs_test.macro_counter");
  counter.Reset();
  obs::SetEnabled(false);
  OBS_COUNTER_INC("obs_test.macro_counter");
  EXPECT_EQ(counter.Value(), 0U);
  obs::SetEnabled(true);
  OBS_COUNTER_INC("obs_test.macro_counter");
  obs::SetEnabled(false);
  EXPECT_EQ(counter.Value(), 1U);
  counter.Reset();
#endif
}

// --- tracing ---------------------------------------------------------------

TEST_F(ObsTest, SpansRecordNameDepthAndNesting) {
  obs::TraceRecorder::Global().Clear();
  obs::SetEnabled(true);
  EXPECT_EQ(obs::CurrentSpanDepth(), 0U);
  {
    obs::ScopedSpan outer("outer");
    EXPECT_EQ(obs::CurrentSpanDepth(), 1U);
    obs::ScopedSpan inner("inner");
    EXPECT_EQ(obs::CurrentSpanDepth(), 2U);
  }
  EXPECT_EQ(obs::CurrentSpanDepth(), 0U);
  obs::SetEnabled(false);

  const std::vector<obs::TraceEvent> events =
      obs::TraceRecorder::Global().Collect();
  ASSERT_EQ(events.size(), 2U);
  const obs::TraceEvent* outer_event = nullptr;
  const obs::TraceEvent* inner_event = nullptr;
  for (const obs::TraceEvent& event : events) {
    if (std::string(event.name) == "outer") outer_event = &event;
    if (std::string(event.name) == "inner") inner_event = &event;
  }
  ASSERT_NE(outer_event, nullptr);
  ASSERT_NE(inner_event, nullptr);
  EXPECT_EQ(outer_event->depth, 1U);
  EXPECT_EQ(inner_event->depth, 2U);
  EXPECT_GE(inner_event->start_ns, outer_event->start_ns);
  EXPECT_GE(outer_event->duration_ns, inner_event->duration_ns);
}

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  obs::TraceRecorder::Global().Clear();
  obs::SetEnabled(false);
  {
    obs::ScopedSpan span("invisible");
    EXPECT_EQ(obs::CurrentSpanDepth(), 0U);  // depth not even incremented
  }
  EXPECT_TRUE(obs::TraceRecorder::Global().Collect().empty());
}

TEST_F(ObsTest, RingBufferOverwritesOldestAndCountsLoss) {
  obs::TraceRecorder recorder;
  recorder.SetRingCapacity(4);
  for (int i = 0; i < 6; ++i) {
    obs::TraceEvent event;
    event.name = "e";
    event.start_ns = i;
    event.duration_ns = 1;
    recorder.Record(event);
  }
  const std::vector<obs::TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 4U);
  // The two oldest events were overwritten; the newest four survive.
  EXPECT_EQ(events.front().start_ns, 2);
  EXPECT_EQ(events.back().start_ns, 5);
  EXPECT_EQ(recorder.overwritten(), 2U);

  recorder.Clear();
  EXPECT_TRUE(recorder.Collect().empty());
  EXPECT_EQ(recorder.overwritten(), 0U);
}

// --- exporters -------------------------------------------------------------

obs::MetricsSnapshot MakeSampleSnapshot() {
  obs::MetricsRegistry registry;
  registry.GetCounter("env.episodes").Add(17);
  registry.GetCounter("blackbox.queries").Add(123456789);
  registry.GetGauge("pool.queue_depth").Set(-2);
  obs::Histogram& histogram =
      registry.GetHistogram("env.inject_us", {0.5, 2.0, 8.0});
  histogram.Observe(0.25);
  histogram.Observe(1.75);
  histogram.Observe(100.0);  // overflow bucket
  return registry.Snapshot();
}

void ExpectSnapshotsEqual(const obs::MetricsSnapshot& a,
                          const obs::MetricsSnapshot& b) {
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (std::size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i], b.counters[i]);
  }
  ASSERT_EQ(a.gauges.size(), b.gauges.size());
  for (std::size_t i = 0; i < a.gauges.size(); ++i) {
    EXPECT_EQ(a.gauges[i], b.gauges[i]);
  }
  ASSERT_EQ(a.histograms.size(), b.histograms.size());
  for (std::size_t i = 0; i < a.histograms.size(); ++i) {
    const obs::HistogramSnapshot& ha = a.histograms[i];
    const obs::HistogramSnapshot& hb = b.histograms[i];
    EXPECT_EQ(ha.name, hb.name);
    EXPECT_EQ(ha.bounds, hb.bounds);
    EXPECT_EQ(ha.counts, hb.counts);
    EXPECT_EQ(ha.count, hb.count);
    EXPECT_DOUBLE_EQ(ha.sum, hb.sum);
  }
}

TEST_F(ObsTest, CsvExportRoundTripsIdentically) {
  const obs::MetricsSnapshot original = MakeSampleSnapshot();
  const std::string path = testing::TempDir() + "/obs_roundtrip.csv";
  ASSERT_TRUE(obs::WriteMetricsCsv(original, path));

  obs::MetricsSnapshot parsed;
  ASSERT_TRUE(obs::ReadMetricsCsv(path, &parsed));
  ExpectSnapshotsEqual(original, parsed);
}

TEST_F(ObsTest, JsonExportRoundTripsIdentically) {
  const obs::MetricsSnapshot original = MakeSampleSnapshot();
  const std::string json = obs::MetricsToJson(original);

  obs::MetricsSnapshot parsed;
  ASSERT_TRUE(obs::ParseMetricsJson(json, &parsed));
  ExpectSnapshotsEqual(original, parsed);
  // Round-trip must be a fixed point: re-serialising the parse yields the
  // byte-identical document (17-significant-digit doubles).
  EXPECT_EQ(obs::MetricsToJson(parsed), json);
}

TEST_F(ObsTest, JsonSummaryContainsDerivedPercentiles) {
  const obs::MetricsSnapshot snapshot = MakeSampleSnapshot();
  const std::string json = obs::MetricsToJson(snapshot);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"mean\""), std::string::npos);
  EXPECT_NE(json.find("\"env.episodes\": 17"), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormedAndRebased) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent event;
  event.name = "env.step";
  event.start_ns = 5000;
  event.duration_ns = 2500;
  event.thread_index = 3;
  event.depth = 2;
  events.push_back(event);
  event.name = "env.reset";
  event.start_ns = 12000;
  event.duration_ns = 1000;
  events.push_back(event);

  const std::string trace = obs::EventsToChromeTrace(events);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"env.step\""), std::string::npos);
  // Timestamps are microseconds rebased to the earliest span: 5000ns -> 0,
  // 12000ns -> 7us; the 2500ns duration becomes 2.5us.
  EXPECT_NE(trace.find("\"ts\": 0"), std::string::npos);
  EXPECT_NE(trace.find("\"ts\": 7"), std::string::npos);
  EXPECT_NE(trace.find("\"dur\": 2.5"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\": 3"), std::string::npos);
}

TEST_F(ObsTest, ExportAllWritesThreeFiles) {
  obs::TraceRecorder::Global().Clear();
  obs::SetEnabled(true);
  { obs::ScopedSpan span("export.smoke"); }
  OBS_COUNTER_INC("obs_test.export_smoke");
  obs::SetEnabled(false);

  const std::string dir = testing::TempDir() + "/obs_export_all";
  ASSERT_TRUE(obs::ExportAll(dir));
  obs::MetricsSnapshot metrics;
  EXPECT_TRUE(obs::ReadMetricsCsv(dir + "/metrics.csv", &metrics));
  std::ifstream summary(dir + "/summary.json");
  EXPECT_TRUE(summary.good());
  std::ifstream trace(dir + "/trace.json");
  EXPECT_TRUE(trace.good());
}

}  // namespace
}  // namespace copyattack
