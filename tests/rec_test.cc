#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "test_seed.h"

#include "data/split.h"
#include "data/synthetic.h"
#include "rec/black_box.h"
#include "rec/evaluator.h"
#include "rec/matrix_factorization.h"
#include "rec/pinsage_lite.h"
#include "rec/trainer.h"
#include "util/rng.h"

namespace copyattack::rec {
namespace {

/// Shared fixture: a tiny synthetic world with a train split.
class RecFixture : public ::testing::Test {
 protected:
  RecFixture()
      : world_(data::GenerateSyntheticWorld(data::SyntheticConfig::Tiny())),
        rng_(testhelpers::TestSeed(11)),
        split_(data::SplitDataset(world_.dataset.target, rng_)) {}

  data::SyntheticWorld world_;
  util::Rng rng_;
  data::TrainValidTestSplit split_;
};

TEST(MfTest, TrainsAboveRandomRanking) {
  // MF learns free per-user embeddings, so it needs a somewhat larger
  // world than Tiny to beat random ranking with a clear margin.
  data::SyntheticConfig config = data::SyntheticConfig::Tiny();
  config.num_target_users = 400;
  config.num_items = 120;
  config.overlap_items = 80;
  config.num_source_users = 200;
  config.target_profile_min = 6;
  config.target_profile_max = 20;
  const auto world = data::GenerateSyntheticWorld(config);
  util::Rng split_rng(testhelpers::TestSeed(11));
  const auto split = data::SplitDataset(world.dataset.target, split_rng);

  MatrixFactorization mf;
  util::Rng rng(testhelpers::TestSeed(3));
  mf.Fit(split.train, 30, rng);

  util::Rng eval_rng(testhelpers::TestSeed(5));
  const auto metrics = EvaluateHeldOut(mf, world.dataset.target, split.test,
                                       {10}, 50, eval_rng);
  // Random ranking over 51 candidates gives HR@10 ~= 10/51 ~= 0.196.
  EXPECT_GT(metrics.at(10).hr, 0.35)
      << "MF should beat random ranking by a clear margin";
}

TEST_F(RecFixture, PinSageTrainsAboveRandomRanking) {
  PinSageLite model;
  util::Rng rng(testhelpers::TestSeed(3));
  model.Fit(split_.train, 25, rng);

  util::Rng eval_rng(testhelpers::TestSeed(5));
  const auto metrics =
      EvaluateHeldOut(model, world_.dataset.target, split_.test, {10}, 50,
                      eval_rng);
  EXPECT_GT(metrics.at(10).hr, 0.30);
}

TEST_F(RecFixture, EarlyStoppingTrainerRuns) {
  PinSageLite model;
  util::Rng rng(testhelpers::TestSeed(3));
  TrainOptions options;
  options.max_epochs = 30;
  options.patience = 3;
  const TrainReport report = TrainWithEarlyStopping(
      model, split_, world_.dataset.target, options, rng);
  EXPECT_GT(report.epochs_run, 0U);
  EXPECT_LE(report.epochs_run, 30U);
  EXPECT_GT(report.best_valid_hr, 0.0);
  EXPECT_GT(report.test_hr, 0.2);
}

TEST_F(RecFixture, MfFoldInHandlesNewUsers) {
  MatrixFactorization mf;
  util::Rng rng(testhelpers::TestSeed(3));
  mf.Fit(split_.train, 10, rng);

  data::Dataset polluted = split_.train;
  const data::UserId new_user = polluted.AddUser({0, 1, 2});
  mf.ObserveNewUser(polluted, new_user);
  // Score must be finite and computable for the folded user.
  const float score = mf.Score(new_user, 3);
  EXPECT_TRUE(std::isfinite(score));
}

TEST_F(RecFixture, PinSageInjectionShiftsItemRepresentation) {
  PinSageLite model;
  util::Rng rng(testhelpers::TestSeed(3));
  model.Fit(split_.train, 15, rng);

  // Pick a cold overlapping item.
  data::ItemId cold = data::kNoItem;
  for (const data::ItemId item : world_.dataset.OverlapItems()) {
    if (split_.train.ItemPopularity(item) <= 2) {
      cold = item;
      break;
    }
  }
  ASSERT_NE(cold, data::kNoItem);

  std::vector<float> before;
  model.ItemRepresentation(cold, &before);

  data::Dataset polluted = split_.train;
  // Inject 5 users who pair the cold item with popular items.
  const auto popular = split_.train.ItemsByPopularity();
  for (int i = 0; i < 5; ++i) {
    data::Profile profile = {cold};
    for (int j = 0; j < 4; ++j) {
      const data::ItemId item = popular[i * 4 + j];
      if (item != cold) profile.push_back(item);
    }
    const data::UserId u = polluted.AddUser(profile);
    model.ObserveNewUser(polluted, u);
  }

  std::vector<float> after;
  model.ItemRepresentation(cold, &after);
  float diff = 0.0f;
  for (std::size_t d = 0; d < before.size(); ++d) {
    diff += std::abs(after[d] - before[d]);
  }
  EXPECT_GT(diff, 1e-4f)
      << "inductive model must react to injected profiles";
}

TEST_F(RecFixture, PinSageIncrementalMatchesRebuild) {
  PinSageLite incremental;
  util::Rng rng(testhelpers::TestSeed(3));
  incremental.Fit(split_.train, 10, rng);

  PinSageLite rebuilt = incremental;  // same trained parameters

  data::Dataset polluted = split_.train;
  util::Rng inject_rng(testhelpers::TestSeed(7));
  for (int i = 0; i < 3; ++i) {
    data::Profile profile;
    std::set<data::ItemId> seen;
    for (int j = 0; j < 5; ++j) {
      const data::ItemId item = static_cast<data::ItemId>(
          inject_rng.UniformUint64(polluted.num_items()));
      if (seen.insert(item).second) profile.push_back(item);
    }
    const data::UserId u = polluted.AddUser(profile);
    incremental.ObserveNewUser(polluted, u);
  }
  rebuilt.BeginServing(polluted);

  // Scores must agree between incremental updates and a full rebuild.
  for (data::UserId u = 0; u < 5; ++u) {
    for (data::ItemId i = 0; i < 10; ++i) {
      EXPECT_NEAR(incremental.Score(u, i), rebuilt.Score(u, i), 1e-4f);
    }
  }
}

TEST_F(RecFixture, SampleNegativesExcludesSeenAndHeldOut) {
  util::Rng rng(testhelpers::TestSeed(9));
  const data::UserId user = 0;
  const data::ItemId held = world_.dataset.target.UserProfile(user)[0];
  const auto negatives =
      SampleNegatives(world_.dataset.target, user, held, 20, rng);
  EXPECT_EQ(negatives.size(), 20U);
  std::set<data::ItemId> unique(negatives.begin(), negatives.end());
  EXPECT_EQ(unique.size(), 20U);
  for (const data::ItemId item : negatives) {
    EXPECT_NE(item, held);
    EXPECT_FALSE(world_.dataset.target.HasInteraction(user, item));
  }
}

TEST_F(RecFixture, EvaluatePromotionSkipsInteractedUsers) {
  MatrixFactorization mf;
  util::Rng rng(testhelpers::TestSeed(3));
  mf.Fit(split_.train, 5, rng);

  // Target = an item user 0 interacted with; evaluating only user 0 must
  // produce zero evaluation pairs.
  const data::ItemId item = world_.dataset.target.UserProfile(0)[0];
  util::Rng eval_rng(testhelpers::TestSeed(5));
  const auto metrics = EvaluatePromotion(
      mf, world_.dataset.target, item, {0}, {10}, 20, eval_rng);
  EXPECT_EQ(metrics.at(10).count, 0U);
}

TEST_F(RecFixture, BlackBoxCountsQueriesAndInjections) {
  PinSageLite model;
  util::Rng rng(testhelpers::TestSeed(3));
  model.Fit(split_.train, 5, rng);

  data::Dataset polluted = split_.train;
  model.BeginServing(polluted);
  BlackBoxRecommender bb(&model, &polluted);

  EXPECT_EQ(bb.query_count(), 0U);
  bb.InjectUser({0, 1, 2});
  bb.InjectUser({3, 4});
  EXPECT_EQ(bb.injected_profiles(), 2U);
  EXPECT_EQ(bb.injected_interactions(), 5U);

  const auto top = bb.QueryTopK(0, {0, 1, 2, 3, 4, 5}, 3);
  EXPECT_EQ(top.size(), 3U);
  EXPECT_EQ(bb.query_count(), 1U);

  bb.ResetCounters();
  EXPECT_EQ(bb.query_count(), 0U);
  EXPECT_EQ(bb.injected_profiles(), 0U);
}

TEST_F(RecFixture, BlackBoxTopKOrderedByScore) {
  PinSageLite model;
  util::Rng rng(testhelpers::TestSeed(3));
  model.Fit(split_.train, 10, rng);
  data::Dataset polluted = split_.train;
  model.BeginServing(polluted);
  BlackBoxRecommender bb(&model, &polluted);

  std::vector<data::ItemId> candidates;
  for (data::ItemId i = 0; i < 20; ++i) candidates.push_back(i);
  const auto top = bb.QueryTopK(1, candidates, 20);
  ASSERT_EQ(top.size(), 20U);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(model.Score(1, top[i - 1]), model.Score(1, top[i]));
  }
}

TEST_F(RecFixture, RecommenderDeterministicInSeed) {
  MatrixFactorization a, b;
  util::Rng rng_a(testhelpers::TestSeed(3)), rng_b(testhelpers::TestSeed(3));
  a.Fit(split_.train, 5, rng_a);
  b.Fit(split_.train, 5, rng_b);
  for (data::UserId u = 0; u < 3; ++u) {
    for (data::ItemId i = 0; i < 5; ++i) {
      EXPECT_FLOAT_EQ(a.Score(u, i), b.Score(u, i));
    }
  }
}

/// Parameterized sweep: both models' evaluator metrics are monotone in k
/// (HR@k1 <= HR@k2 for k1 <= k2) — an invariant of the ranking protocol.
class MetricsMonotoneProperty : public ::testing::TestWithParam<int> {};

TEST_P(MetricsMonotoneProperty, HrMonotoneInK) {
  const data::SyntheticWorld world =
      data::GenerateSyntheticWorld(data::SyntheticConfig::Tiny());
  util::Rng rng(testhelpers::TestSeed(static_cast<std::uint64_t>(GetParam())));
  const auto split = data::SplitDataset(world.dataset.target, rng);
  MatrixFactorization mf;
  mf.Fit(split.train, 8, rng);
  util::Rng eval_rng(testhelpers::TestSeed(42));
  const auto metrics = EvaluateHeldOut(
      mf, world.dataset.target, split.test, {5, 10, 20}, 50, eval_rng);
  EXPECT_LE(metrics.at(5).hr, metrics.at(10).hr);
  EXPECT_LE(metrics.at(10).hr, metrics.at(20).hr);
  EXPECT_LE(metrics.at(5).ndcg, metrics.at(10).ndcg);
  EXPECT_LE(metrics.at(10).ndcg, metrics.at(20).ndcg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsMonotoneProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace copyattack::rec

namespace copyattack::rec {
namespace {

TEST_F(RecFixture, PinSagePopularityInterceptRanksColdItemsLow) {
  PinSageLite model;
  util::Rng rng(testhelpers::TestSeed(3));
  model.Fit(split_.train, 12, rng);

  // Average score of the 5 most vs 5 least popular items across users:
  // the frozen intercept must give popular items a clear edge.
  const auto by_pop = split_.train.ItemsByPopularity();
  double popular_sum = 0.0, cold_sum = 0.0;
  for (data::UserId u = 0; u < 20; ++u) {
    for (int i = 0; i < 5; ++i) {
      popular_sum += model.Score(u, by_pop[i]);
      cold_sum += model.Score(u, by_pop[by_pop.size() - 1 - i]);
    }
  }
  EXPECT_GT(popular_sum, cold_sum);
}

TEST_F(RecFixture, PinSageInterceptFrozenUnderInjection) {
  PinSageLite model;
  util::Rng rng(testhelpers::TestSeed(3));
  model.Fit(split_.train, 12, rng);

  // Pick a cold item and a neutral probe user; inject 10 users holding
  // only that item. With the intercept frozen, the score change must come
  // solely from the aggregation term (which these single-item profiles
  // leave bounded), not from an exploding popularity bias.
  const auto by_pop = split_.train.ItemsByPopularity();
  const data::ItemId cold = by_pop.back();
  data::Dataset polluted = split_.train;
  PinSageLite frozen_check = model;
  frozen_check.BeginServing(polluted);

  // Recreate the would-be intercept delta: log1p(10+n) vs log1p(n) is
  // large for a cold item, so if the intercept were live the score jump
  // would exceed the aggregation term's bound of (1 - alpha) * |p| * |z|.
  const float before = frozen_check.Score(0, cold);
  for (int i = 0; i < 10; ++i) {
    const data::UserId u = polluted.AddUser({cold});
    frozen_check.ObserveNewUser(polluted, u);
  }
  const float after = frozen_check.Score(0, cold);
  // The aggregation term is bounded by (1-alpha)*sqrt(count) with unit
  // user representations and |p| <= 1; allow that, but not the ~0.8*2.3
  // intercept jump a live bias would add on top.
  EXPECT_LT(std::abs(after - before), 2.0f);
}

TEST_F(RecFixture, PinSageCenteringMakesGenericProfilesWeak) {
  // A focused (single-cluster) injected profile should shift its items'
  // representations more than a long generic profile built from the most
  // popular items, because centering cancels the generic direction.
  PinSageLite model;
  util::Rng rng(testhelpers::TestSeed(3));
  model.Fit(split_.train, 12, rng);

  const auto by_pop = split_.train.ItemsByPopularity();
  const data::ItemId cold = by_pop.back();

  auto shift_norm = [&](const data::Profile& extra) {
    PinSageLite clone = model;
    data::Dataset polluted = split_.train;
    clone.BeginServing(polluted);
    std::vector<float> before;
    clone.ItemRepresentation(cold, &before);
    data::Profile profile = {cold};
    for (const data::ItemId item : extra) {
      if (item != cold) profile.push_back(item);
    }
    const data::UserId u = polluted.AddUser(profile);
    clone.ObserveNewUser(polluted, u);
    std::vector<float> after;
    clone.ItemRepresentation(cold, &after);
    float diff = 0.0f;
    for (std::size_t d = 0; d < before.size(); ++d) {
      const float delta = after[d] - before[d];
      diff += delta * delta;
    }
    return std::sqrt(diff);
  };

  // Generic profile: the 20 most popular items (spans all clusters).
  data::Profile generic(by_pop.begin(), by_pop.begin() + 20);
  // Focused profile: a real source user's profile window (one session).
  const auto& holders = world_.dataset.SourceHolders(
      world_.dataset.OverlapItems().front());
  const double generic_shift = shift_norm(generic);
  const double focused_shift =
      holders.empty()
          ? generic_shift + 1.0
          : shift_norm(world_.dataset.source.UserProfile(holders[0]));
  // Both inject exactly one user; the shift magnitude is the per-user
  // unit direction divided by the neighborhood norm, so they are close —
  // but the *direction* of the generic one is near the centered-out mean.
  // We assert the focused shift is at least comparable (no collapse).
  EXPECT_GT(focused_shift, 0.25 * generic_shift);
}

TEST_F(RecFixture, PinSageMeanRecomputedAfterTrainEpoch) {
  PinSageLite model;
  util::Rng rng(testhelpers::TestSeed(3));
  model.InitTraining(split_.train, rng);
  model.TrainEpoch(split_.train, rng);
  model.BeginServing(split_.train);
  const float early = model.Score(0, 0);
  // Further training must change serving scores (mean + embeddings move).
  for (int e = 0; e < 5; ++e) model.TrainEpoch(split_.train, rng);
  model.BeginServing(split_.train);
  const float later = model.Score(0, 0);
  EXPECT_NE(early, later);
}

TEST_F(RecFixture, PinSageCenteringCanBeDisabled) {
  PinSageConfig config;
  config.center_user_reps = false;
  PinSageLite model(config);
  util::Rng rng(testhelpers::TestSeed(3));
  model.Fit(split_.train, 8, rng);
  // Sanity: scores finite, model still ranks above random.
  util::Rng eval_rng(testhelpers::TestSeed(5));
  const auto metrics = EvaluateHeldOut(model, world_.dataset.target,
                                       split_.test, {10}, 50, eval_rng);
  EXPECT_GT(metrics.at(10).hr, 0.25);
}

}  // namespace
}  // namespace copyattack::rec

#include "rec/item_knn.h"

namespace copyattack::rec {
namespace {

TEST_F(RecFixture, ItemKnnBuildsSimilarityLists) {
  ItemKnn knn;
  util::Rng rng(testhelpers::TestSeed(3));
  knn.Fit(split_.train, 1, rng);
  // Some item must have neighbors, ordered by descending similarity.
  bool any = false;
  for (data::ItemId item = 0; item < split_.train.num_items(); ++item) {
    const auto& neighbors = knn.Neighbors(item);
    for (std::size_t i = 1; i < neighbors.size(); ++i) {
      EXPECT_GE(neighbors[i - 1].second, neighbors[i].second);
    }
    any = any || !neighbors.empty();
  }
  EXPECT_TRUE(any);
}

TEST_F(RecFixture, ItemKnnRanksAboveRandom) {
  ItemKnn knn;
  util::Rng rng(testhelpers::TestSeed(3));
  knn.Fit(split_.train, 1, rng);
  util::Rng eval_rng(testhelpers::TestSeed(5));
  const auto metrics = EvaluateHeldOut(knn, world_.dataset.target,
                                       split_.test, {10}, 50, eval_rng);
  EXPECT_GT(metrics.at(10).hr, 0.28);
}

TEST_F(RecFixture, ItemKnnSimilarityListsAreFrozenUnderInjection) {
  ItemKnn knn;
  util::Rng rng(testhelpers::TestSeed(3));
  knn.Fit(split_.train, 1, rng);
  const auto before = knn.Neighbors(0);
  data::Dataset polluted = split_.train;
  const data::UserId u = polluted.AddUser({0, 1, 2});
  knn.ObserveNewUser(polluted, u);
  EXPECT_EQ(knn.Neighbors(0), before)
      << "ItemKNN has no inductive channel: lists change only on retrain";
}

TEST_F(RecFixture, ItemKnnRetrainIngestsInjectedCooccurrence) {
  ItemKnn knn;
  util::Rng rng(testhelpers::TestSeed(3));
  knn.Fit(split_.train, 1, rng);

  // Choose two items that never co-occur; inject users pairing them, then
  // retrain: each must appear in the other's neighbor list.
  data::ItemId a = data::kNoItem, b = data::kNoItem;
  for (data::ItemId i = 0; i < split_.train.num_items() && a == data::kNoItem;
       ++i) {
    for (data::ItemId j = i + 1; j < split_.train.num_items(); ++j) {
      bool cooccur = false;
      for (const auto& [n, s] : knn.Neighbors(i)) {
        (void)s;
        cooccur = cooccur || n == j;
      }
      if (!cooccur && !split_.train.ItemProfile(i).empty() &&
          !split_.train.ItemProfile(j).empty()) {
        a = i;
        b = j;
        break;
      }
    }
  }
  ASSERT_NE(a, data::kNoItem);

  data::Dataset polluted = split_.train;
  for (int k = 0; k < 10; ++k) {
    polluted.AddUser({a, b});
  }
  util::Rng retrain_rng(testhelpers::TestSeed(5));
  knn.TrainEpoch(polluted, retrain_rng);
  bool found = false;
  for (const auto& [n, s] : knn.Neighbors(a)) {
    (void)s;
    found = found || n == b;
  }
  EXPECT_TRUE(found) << "retraining must ingest injected co-occurrences";
}

TEST_F(RecFixture, ItemKnnScoreReflectsProfileOverlap) {
  ItemKnn knn;
  util::Rng rng(testhelpers::TestSeed(3));
  knn.Fit(split_.train, 1, rng);
  // A user scores an item they co-consumed neighbors of higher than a
  // random user with an empty intersection — weak but monotone sanity:
  // scores are non-negative and zero for isolated items.
  data::ItemId isolated = data::kNoItem;
  for (data::ItemId i = 0; i < split_.train.num_items(); ++i) {
    if (knn.Neighbors(i).empty()) {
      isolated = i;
      break;
    }
  }
  if (isolated != data::kNoItem) {
    EXPECT_FLOAT_EQ(knn.Score(0, isolated), 0.0f);
  }
  for (data::ItemId i = 0; i < 10; ++i) {
    EXPECT_GE(knn.Score(0, i), 0.0f);
  }
}

}  // namespace
}  // namespace copyattack::rec
