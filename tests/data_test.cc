#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "test_seed.h"

#include "data/cross_domain.h"
#include "data/dataset.h"
#include "data/io.h"
#include "data/split.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "data/target_items.h"
#include "rec/evaluator.h"
#include "rec/matrix_factorization.h"
#include "util/rng.h"

namespace copyattack::data {
namespace {

TEST(DatasetTest, AddUserBuildsBothProfiles) {
  Dataset d(10);
  const UserId u0 = d.AddUser({1, 3, 5});
  const UserId u1 = d.AddUser({3, 2});
  EXPECT_EQ(u0, 0U);
  EXPECT_EQ(u1, 1U);
  EXPECT_EQ(d.num_users(), 2U);
  EXPECT_EQ(d.num_interactions(), 5U);
  EXPECT_EQ(d.UserProfile(u0), (Profile{1, 3, 5}));
  EXPECT_EQ(d.ItemProfile(3), (std::vector<UserId>{0, 1}));
  EXPECT_EQ(d.ItemPopularity(1), 1U);
  EXPECT_EQ(d.ItemPopularity(9), 0U);
}

TEST(DatasetTest, HasInteraction) {
  Dataset d(5);
  d.AddUser({0, 4});
  EXPECT_TRUE(d.HasInteraction(0, 0));
  EXPECT_TRUE(d.HasInteraction(0, 4));
  EXPECT_FALSE(d.HasInteraction(0, 2));
}

TEST(DatasetTest, AppendInteraction) {
  Dataset d(5);
  d.AddUser({1});
  d.AppendInteraction(0, 3);
  EXPECT_EQ(d.UserProfile(0), (Profile{1, 3}));
  EXPECT_TRUE(d.HasInteraction(0, 3));
  EXPECT_EQ(d.num_interactions(), 2U);
  EXPECT_EQ(d.ItemProfile(3), (std::vector<UserId>{0}));
}

TEST(DatasetTest, RollbackRemovesAppendedUsers) {
  Dataset d(6);
  d.AddUser({1, 3});
  d.AddUser({3, 2});
  const DatasetCheckpoint checkpoint = d.Checkpoint();

  d.AddUser({0, 3, 5});
  d.AddUser({2});
  EXPECT_EQ(d.num_users(), 4U);
  EXPECT_EQ(d.ItemProfile(3), (std::vector<UserId>{0, 1, 2}));

  d.RollbackTo(checkpoint);
  EXPECT_EQ(d.num_users(), 2U);
  EXPECT_EQ(d.num_interactions(), 4U);
  EXPECT_EQ(d.UserProfile(0), (Profile{1, 3}));
  EXPECT_EQ(d.UserProfile(1), (Profile{3, 2}));
  EXPECT_EQ(d.ItemProfile(3), (std::vector<UserId>{0, 1}));
  EXPECT_EQ(d.ItemPopularity(5), 0U);
  EXPECT_EQ(d.ItemPopularity(0), 0U);
}

TEST(DatasetTest, RollbackUndoesAppendedInteractions) {
  Dataset d(6);
  d.AddUser({1});
  const DatasetCheckpoint checkpoint = d.Checkpoint();

  d.AppendInteraction(0, 4);   // appended to a pre-checkpoint user
  d.AddUser({4, 2});           // new user also touching item 4
  d.AppendInteraction(1, 5);   // appended to a post-checkpoint user
  EXPECT_EQ(d.ItemProfile(4), (std::vector<UserId>{0, 1}));

  d.RollbackTo(checkpoint);
  EXPECT_EQ(d.num_users(), 1U);
  EXPECT_EQ(d.num_interactions(), 1U);
  EXPECT_EQ(d.UserProfile(0), (Profile{1}));
  EXPECT_FALSE(d.HasInteraction(0, 4));
  EXPECT_EQ(d.ItemPopularity(4), 0U);
  EXPECT_EQ(d.ItemPopularity(5), 0U);
}

TEST(DatasetTest, CheckpointsNestAndRepeat) {
  Dataset d(4);
  d.AddUser({0});
  const DatasetCheckpoint base = d.Checkpoint();
  d.AddUser({1, 2});
  const DatasetCheckpoint inner = d.Checkpoint();

  // Repeated episode loop against the inner checkpoint.
  for (int episode = 0; episode < 3; ++episode) {
    d.AddUser({2, 3});
    d.AppendInteraction(0, static_cast<ItemId>(3));
    d.RollbackTo(inner);
    EXPECT_EQ(d.num_users(), 2U);
    EXPECT_EQ(d.ItemProfile(2), (std::vector<UserId>{1}));
    EXPECT_EQ(d.UserProfile(0), (Profile{0}));
  }

  // Rolling back further to the outer checkpoint still works.
  d.RollbackTo(base);
  EXPECT_EQ(d.num_users(), 1U);
  EXPECT_EQ(d.num_interactions(), 1U);
  EXPECT_EQ(d.ItemPopularity(1), 0U);
}

TEST(DatasetTest, RollbackMatchesFreshCopyOnSyntheticData) {
  // Property: checkpoint -> mutate -> rollback leaves the dataset
  // indistinguishable from an untouched copy, across every accessor.
  const auto world = GenerateSyntheticWorld(SyntheticConfig::Tiny());
  Dataset d = world.dataset.target;
  const Dataset reference = d;
  const DatasetCheckpoint checkpoint = d.Checkpoint();

  util::Rng rng(testhelpers::TestSeed(99));
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      const ItemId a = static_cast<ItemId>(rng.UniformUint64(d.num_items()));
      ItemId b = static_cast<ItemId>(rng.UniformUint64(d.num_items()));
      if (b == a) b = (b + 1) % static_cast<ItemId>(d.num_items());
      d.AddUser({a, b});
    }
    d.RollbackTo(checkpoint);
  }

  ASSERT_EQ(d.num_users(), reference.num_users());
  ASSERT_EQ(d.num_interactions(), reference.num_interactions());
  for (UserId u = 0; u < reference.num_users(); ++u) {
    ASSERT_EQ(d.UserProfile(u), reference.UserProfile(u)) << "user " << u;
  }
  for (ItemId i = 0; i < reference.num_items(); ++i) {
    ASSERT_EQ(d.ItemProfile(i), reference.ItemProfile(i)) << "item " << i;
  }
  EXPECT_EQ(d.ItemsByPopularity(), reference.ItemsByPopularity());
}

TEST(DatasetDeathTest, RollbackWithoutCheckpointAborts) {
  Dataset d(3);
  d.AddUser({0});
  DatasetCheckpoint bogus;
  bogus.item_profile_sizes.assign(3, 0);
  EXPECT_DEATH(d.RollbackTo(bogus), "CHECK failed");
}

TEST(DatasetTest, AllInteractionsOrdering) {
  Dataset d(5);
  d.AddUser({2, 0});
  d.AddUser({1});
  const auto all = d.AllInteractions();
  ASSERT_EQ(all.size(), 3U);
  EXPECT_EQ(all[0], (Interaction{0, 2, 0}));
  EXPECT_EQ(all[1], (Interaction{0, 0, 1}));
  EXPECT_EQ(all[2], (Interaction{1, 1, 0}));
}

TEST(DatasetTest, ItemsByPopularity) {
  Dataset d(4);
  d.AddUser({0, 1});
  d.AddUser({1, 2});
  d.AddUser({1});
  const auto order = d.ItemsByPopularity();
  EXPECT_EQ(order[0], 1U);  // popularity 3
  EXPECT_EQ(order.back(), 3U);  // popularity 0
}

TEST(DatasetTest, MeanProfileLength) {
  Dataset d(4);
  EXPECT_DOUBLE_EQ(d.MeanProfileLength(), 0.0);
  d.AddUser({0, 1});
  d.AddUser({2});
  EXPECT_DOUBLE_EQ(d.MeanProfileLength(), 1.5);
}

TEST(DatasetTest, CopySemantics) {
  Dataset d(4);
  d.AddUser({0, 1});
  Dataset copy = d;
  copy.AddUser({2});
  EXPECT_EQ(d.num_users(), 1U);
  EXPECT_EQ(copy.num_users(), 2U);
}

TEST(DatasetDeathTest, DuplicateItemInProfileAborts) {
  Dataset d(4);
  EXPECT_DEATH(d.AddUser({1, 1}), "duplicate item");
}

TEST(DatasetDeathTest, OutOfRangeItemAborts) {
  Dataset d(4);
  EXPECT_DEATH(d.AddUser({7}), "CHECK failed");
}

TEST(CrossDomainTest, OverlapBookkeeping) {
  CrossDomainDataset cd("test", 6);
  cd.overlap[1] = true;
  cd.overlap[4] = true;
  EXPECT_EQ(cd.OverlapCount(), 2U);
  EXPECT_EQ(cd.OverlapItems(), (std::vector<ItemId>{1, 4}));
  cd.source.AddUser({1, 4});
  EXPECT_TRUE(cd.SourceRespectsOverlap());
  cd.source.AddUser({2});
  EXPECT_FALSE(cd.SourceRespectsOverlap());
}

TEST(CrossDomainTest, SourceHolders) {
  CrossDomainDataset cd("test", 6);
  cd.overlap[1] = true;
  cd.source.AddUser({1});
  cd.source.AddUser({1});
  EXPECT_EQ(cd.SourceHolders(1).size(), 2U);
  EXPECT_TRUE(cd.SourceHolders(0).empty());
}

TEST(SyntheticTest, TinyWorldShapes) {
  const SyntheticConfig config = SyntheticConfig::Tiny();
  const SyntheticWorld world = GenerateSyntheticWorld(config);
  EXPECT_EQ(world.dataset.target.num_users(), config.num_target_users);
  EXPECT_EQ(world.dataset.source.num_users(), config.num_source_users);
  EXPECT_EQ(world.dataset.target.num_items(), config.num_items);
  EXPECT_EQ(world.dataset.OverlapCount(), config.overlap_items);
  EXPECT_EQ(world.item_factors.rows(), config.num_items);
  EXPECT_EQ(world.item_cluster.size(), config.num_items);
}

TEST(SyntheticTest, SourceOnlyTouchesOverlap) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::Tiny());
  EXPECT_TRUE(world.dataset.SourceRespectsOverlap());
}

TEST(SyntheticTest, EveryOverlapItemHasSourceHolder) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::Tiny());
  for (const ItemId item : world.dataset.OverlapItems()) {
    EXPECT_FALSE(world.dataset.SourceHolders(item).empty())
        << "overlap item " << item << " has no source holder";
  }
}

TEST(SyntheticTest, DeterministicInSeed) {
  const SyntheticWorld a = GenerateSyntheticWorld(SyntheticConfig::Tiny());
  const SyntheticWorld b = GenerateSyntheticWorld(SyntheticConfig::Tiny());
  ASSERT_EQ(a.dataset.target.num_users(), b.dataset.target.num_users());
  for (UserId u = 0; u < a.dataset.target.num_users(); ++u) {
    EXPECT_EQ(a.dataset.target.UserProfile(u),
              b.dataset.target.UserProfile(u));
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig config = SyntheticConfig::Tiny();
  const SyntheticWorld a = GenerateSyntheticWorld(config);
  config.seed += 1;
  const SyntheticWorld b = GenerateSyntheticWorld(config);
  bool any_diff = false;
  for (UserId u = 0; u < a.dataset.target.num_users() && !any_diff; ++u) {
    any_diff = a.dataset.target.UserProfile(u) !=
               b.dataset.target.UserProfile(u);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, ProfileLengthsWithinBounds) {
  const SyntheticConfig config = SyntheticConfig::Tiny();
  const SyntheticWorld world = GenerateSyntheticWorld(config);
  for (UserId u = 0; u < world.dataset.target.num_users(); ++u) {
    const std::size_t len = world.dataset.target.UserProfile(u).size();
    EXPECT_GE(len, 1U);
    EXPECT_LE(len, config.target_profile_max);
  }
}

TEST(SyntheticTest, PopularityIsSkewed) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::SmallCross());
  const auto order = world.dataset.target.ItemsByPopularity();
  const std::size_t head = world.dataset.target.ItemPopularity(order[0]);
  const std::size_t tail =
      world.dataset.target.ItemPopularity(order[order.size() / 2]);
  EXPECT_GT(head, 8 * std::max<std::size_t>(tail, 1))
      << "expected a long-tailed popularity distribution";
}

TEST(SyntheticTest, SmallCrossHasColdOverlapItems) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::SmallCross());
  std::size_t cold = 0;
  for (const ItemId item : world.dataset.OverlapItems()) {
    if (world.dataset.target.ItemPopularity(item) < 10) ++cold;
  }
  EXPECT_GE(cold, 50U) << "need at least 50 cold targets (paper protocol)";
}

TEST(SplitTest, SplitsPreserveInteractions) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::Tiny());
  util::Rng rng(testhelpers::TestSeed(5));
  const TrainValidTestSplit split =
      SplitDataset(world.dataset.target, rng);
  EXPECT_EQ(split.train.num_interactions() + split.valid.size() +
                split.test.size(),
            world.dataset.target.num_interactions());
  EXPECT_EQ(split.train.num_users(), world.dataset.target.num_users());
}

TEST(SplitTest, EveryUserKeepsTrainingData) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::Tiny());
  util::Rng rng(testhelpers::TestSeed(5));
  const auto split = SplitDataset(world.dataset.target, rng);
  for (UserId u = 0; u < split.train.num_users(); ++u) {
    EXPECT_FALSE(split.train.UserProfile(u).empty());
  }
}

TEST(SplitTest, HeldOutItemsComeFromUserProfiles) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::Tiny());
  util::Rng rng(testhelpers::TestSeed(5));
  const auto split = SplitDataset(world.dataset.target, rng);
  for (const HeldOut& pair : split.test) {
    EXPECT_TRUE(world.dataset.target.HasInteraction(pair.user, pair.item));
    EXPECT_FALSE(split.train.HasInteraction(pair.user, pair.item));
  }
}

TEST(SplitTest, FractionsApproximatelyHonored) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::SmallCross());
  util::Rng rng(testhelpers::TestSeed(5));
  const auto split = SplitDataset(world.dataset.target, rng, 0.1, 0.1);
  const double total =
      static_cast<double>(world.dataset.target.num_interactions());
  EXPECT_NEAR(static_cast<double>(split.valid.size()) / total, 0.1, 0.03);
  EXPECT_NEAR(static_cast<double>(split.test.size()) / total, 0.1, 0.03);
}

TEST(StatsTest, ComputeStatsCountsMatch) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::Tiny());
  const CrossDomainStats stats = ComputeStats(world.dataset);
  EXPECT_EQ(stats.target_users, world.dataset.target.num_users());
  EXPECT_EQ(stats.source_users, world.dataset.source.num_users());
  EXPECT_EQ(stats.overlapping_items, world.dataset.OverlapCount());
  EXPECT_EQ(stats.target_interactions,
            world.dataset.target.num_interactions());
  EXPECT_FALSE(FormatStats(stats).empty());
}

TEST(TargetItemsTest, ColdTargetsAreColdAndAttackable) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::SmallCross());
  util::Rng rng(testhelpers::TestSeed(9));
  const auto targets =
      SampleColdTargetItems(world.dataset, 50, 10, rng);
  EXPECT_EQ(targets.size(), 50U);
  std::set<ItemId> unique(targets.begin(), targets.end());
  EXPECT_EQ(unique.size(), targets.size());
  for (const ItemId item : targets) {
    EXPECT_TRUE(world.dataset.overlap[item]);
    EXPECT_FALSE(world.dataset.SourceHolders(item).empty());
    EXPECT_LT(world.dataset.target.ItemPopularity(item), 10U);
  }
}

TEST(TargetItemsTest, FallbackFillsQuota) {
  // Tiny world with a huge cold threshold of 0 forces the fallback path.
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::Tiny());
  util::Rng rng(testhelpers::TestSeed(9));
  const auto targets = SampleColdTargetItems(world.dataset, 10, 0, rng);
  EXPECT_EQ(targets.size(), 10U);
}

TEST(TargetItemsTest, PopularityGroupsAreOrdered) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::SmallCross());
  util::Rng rng(testhelpers::TestSeed(9));
  const auto groups =
      SampleTargetsByPopularityGroup(world.dataset, 10, 5, rng);
  ASSERT_EQ(groups.size(), 10U);
  // Every sampled item in group g must be at least as popular as the
  // least popular item sampled in group g+2 (allowing boundary slack).
  double prev_mean = 1e18;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    double mean = 0.0;
    for (const ItemId item : group) {
      mean += static_cast<double>(
          world.dataset.target.ItemPopularity(item));
    }
    mean /= static_cast<double>(group.size());
    EXPECT_LE(mean, prev_mean + 1.0);
    prev_mean = mean;
  }
}

TEST(IoTest, SaveLoadRoundTrip) {
  const SyntheticWorld world =
      GenerateSyntheticWorld(SyntheticConfig::Tiny());
  const std::string prefix = testing::TempDir() + "/ca_io_test";
  ASSERT_TRUE(SaveCrossDomain(world.dataset, prefix));

  CrossDomainDataset loaded("placeholder", 1);
  ASSERT_TRUE(LoadCrossDomain(prefix, &loaded));
  EXPECT_EQ(loaded.name, world.dataset.name);
  EXPECT_EQ(loaded.target.num_users(), world.dataset.target.num_users());
  EXPECT_EQ(loaded.source.num_interactions(),
            world.dataset.source.num_interactions());
  EXPECT_EQ(loaded.OverlapCount(), world.dataset.OverlapCount());
  for (UserId u = 0; u < loaded.target.num_users(); ++u) {
    EXPECT_EQ(loaded.target.UserProfile(u),
              world.dataset.target.UserProfile(u));
  }
  for (const char* suffix : {".meta.csv", ".target.csv", ".source.csv"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(IoTest, LoadMissingFails) {
  CrossDomainDataset out("x", 1);
  IoError error;
  EXPECT_FALSE(LoadCrossDomain("/nonexistent/prefix", &out, &error));
  EXPECT_EQ(error.file, "/nonexistent/prefix.meta.csv");
  EXPECT_EQ(error.line, 0U);
  EXPECT_NE(error.Format().find("cannot open"), std::string::npos);
}

/// Writes a valid tiny world to a fresh prefix, then lets the test mangle
/// one of its files to exercise a reject path.
class CorruptFixture {
 public:
  explicit CorruptFixture(const std::string& tag)
      : prefix_(testing::TempDir() + "/ca_io_corrupt_" + tag) {
    const SyntheticWorld world =
        GenerateSyntheticWorld(SyntheticConfig::Tiny());
    EXPECT_TRUE(SaveCrossDomain(world.dataset, prefix_));
  }
  ~CorruptFixture() {
    for (const char* suffix : {".meta.csv", ".target.csv", ".source.csv"}) {
      std::remove((prefix_ + suffix).c_str());
    }
  }

  const std::string& prefix() const { return prefix_; }

  void Overwrite(const std::string& suffix, const std::string& content) {
    std::ofstream out(prefix_ + suffix, std::ios::trunc);
    out << content;
  }

  IoError ExpectLoadFails() {
    CrossDomainDataset out("x", 1);
    IoError error;
    EXPECT_FALSE(LoadCrossDomain(prefix_, &out, &error));
    return error;
  }

 private:
  std::string prefix_;
};

TEST(IoCorruptTest, WrongHeaderReportsLineOne) {
  CorruptFixture fixture("header");
  fixture.Overwrite(".target.csv", "user,thing,position\n0,1,0\n");
  const IoError error = fixture.ExpectLoadFails();
  EXPECT_EQ(error.file, fixture.prefix() + ".target.csv");
  EXPECT_EQ(error.line, 1U);
}

TEST(IoCorruptTest, TruncatedRowReportsItsLine) {
  CorruptFixture fixture("truncated");
  // Data row on line 3 lost its position column (a torn write).
  fixture.Overwrite(".target.csv",
                    "user,item,position\n0,1,0\n0,2\n");
  const IoError error = fixture.ExpectLoadFails();
  EXPECT_EQ(error.line, 3U);
  EXPECT_NE(error.message.find("3 fields"), std::string::npos);
}

TEST(IoCorruptTest, NonNumericFieldReportsItsLine) {
  CorruptFixture fixture("alpha");
  fixture.Overwrite(".target.csv",
                    "user,item,position\n0,1,0\n0,banana,1\n");
  const IoError error = fixture.ExpectLoadFails();
  EXPECT_EQ(error.line, 3U);
  EXPECT_NE(error.message.find("non-numeric"), std::string::npos);
}

TEST(IoCorruptTest, OutOfRangeItemReportsItsLine) {
  CorruptFixture fixture("range");
  fixture.Overwrite(".target.csv",
                    "user,item,position\n0,999999,0\n");
  const IoError error = fixture.ExpectLoadFails();
  EXPECT_EQ(error.line, 2U);
  EXPECT_NE(error.message.find("out of range"), std::string::npos);
}

TEST(IoCorruptTest, NonDenseUsersRejected) {
  CorruptFixture fixture("gap");
  // User 1 is missing: ids must be dense.
  fixture.Overwrite(".target.csv",
                    "user,item,position\n0,1,0\n2,3,0\n");
  const IoError error = fixture.ExpectLoadFails();
  EXPECT_NE(error.message.find("not dense"), std::string::npos);
}

TEST(IoCorruptTest, BadMetaRejected) {
  CorruptFixture fixture("meta");
  fixture.Overwrite(".meta.csv", "name,num_items,overlap_bits\nw,0,\n");
  const IoError error = fixture.ExpectLoadFails();
  EXPECT_EQ(error.file, fixture.prefix() + ".meta.csv");
  EXPECT_NE(error.message.find("num_items"), std::string::npos);
}

TEST(IoCorruptTest, OverlapBitsLengthMismatchRejected) {
  CorruptFixture fixture("bits");
  fixture.Overwrite(".meta.csv", "name,num_items,overlap_bits\nw,4,01\n");
  const IoError error = fixture.ExpectLoadFails();
  EXPECT_NE(error.message.find("overlap_bits"), std::string::npos);
}

TEST(IoCorruptTest, ErrorOutParamIsOptional) {
  CorruptFixture fixture("noerr");
  fixture.Overwrite(".target.csv", "user,item,position\n0,banana,0\n");
  CrossDomainDataset out("x", 1);
  EXPECT_FALSE(LoadCrossDomain(fixture.prefix(), &out));  // no IoError*
}

}  // namespace
}  // namespace copyattack::data

namespace copyattack::data {
namespace {

/// Property sweep: generator invariants hold across a grid of
/// configurations (overlap discipline, holder guarantee, profile bounds,
/// determinism).
struct GenCase {
  std::size_t items;
  std::size_t overlap;
  std::size_t target_users;
  std::size_t source_users;
  std::size_t clusters;
};

class GeneratorProperty : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorProperty, Invariants) {
  const GenCase c = GetParam();
  SyntheticConfig config = SyntheticConfig::Tiny();
  config.num_items = c.items;
  config.overlap_items = c.overlap;
  config.num_target_users = c.target_users;
  config.num_source_users = c.source_users;
  config.num_clusters = c.clusters;
  config.seed = 1000 + c.items + c.overlap;
  const SyntheticWorld world = GenerateSyntheticWorld(config);

  EXPECT_EQ(world.dataset.OverlapCount(), c.overlap);
  EXPECT_TRUE(world.dataset.SourceRespectsOverlap());
  for (const ItemId item : world.dataset.OverlapItems()) {
    EXPECT_FALSE(world.dataset.SourceHolders(item).empty());
  }
  for (UserId u = 0; u < world.dataset.target.num_users(); ++u) {
    EXPECT_GE(world.dataset.target.UserProfile(u).size(), 1U);
  }
  // Item clusters are all within range.
  for (const std::size_t cluster : world.item_cluster) {
    EXPECT_LT(cluster, c.clusters);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorProperty,
    ::testing::Values(GenCase{40, 10, 30, 50, 3},
                      GenCase{60, 60, 40, 60, 4},   // full overlap
                      GenCase{100, 50, 80, 200, 8},
                      GenCase{30, 1, 20, 40, 2},    // single shared item
                      GenCase{80, 40, 10, 300, 5}));

TEST(EvaluatorDeterminism, SameSeedSameMetrics) {
  const SyntheticWorld world = GenerateSyntheticWorld(SyntheticConfig::Tiny());
  util::Rng split_rng(testhelpers::TestSeed(3));
  const auto split = SplitDataset(world.dataset.target, split_rng);
  rec::MatrixFactorization mf;
  util::Rng train_rng(testhelpers::TestSeed(5));
  mf.Fit(split.train, 5, train_rng);

  util::Rng eval_a(testhelpers::TestSeed(9)), eval_b(testhelpers::TestSeed(9));
  const auto a = rec::EvaluateHeldOut(mf, world.dataset.target, split.test,
                                      {10, 20}, 40, eval_a);
  const auto b = rec::EvaluateHeldOut(mf, world.dataset.target, split.test,
                                      {10, 20}, 40, eval_b);
  EXPECT_DOUBLE_EQ(a.at(10).hr, b.at(10).hr);
  EXPECT_DOUBLE_EQ(a.at(20).ndcg, b.at(20).ndcg);
}

}  // namespace
}  // namespace copyattack::data
