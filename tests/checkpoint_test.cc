// Tests of the crash-safe campaign checkpoint subsystem (ISSUE 5):
// serialization round trips, corruption detection + fallback rotation,
// fingerprint guarding, and the kill-and-resume equivalence criterion —
// a resumed campaign must reproduce the uninterrupted campaign's final
// metrics bit-exactly.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/copy_attack.h"
#include "core/runner.h"
#include "data/io.h"
#include "fault/crash_point.h"
#include "test_helpers.h"
#include "test_seed.h"
#include "util/rng.h"

namespace copyattack::core {
namespace {

using testhelpers::SharedTinyWorld;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

CampaignFingerprint TestFingerprint() {
  CampaignFingerprint fp;
  fp.method = "CopyAttack";
  fp.seed = 42;
  fp.episodes = 5;
  fp.num_targets = 3;
  fp.env_budget = 9;
  return fp;
}

CampaignCheckpoint TestCheckpoint() {
  CampaignCheckpoint state;
  state.fingerprint = TestFingerprint();
  TargetOutcomeState outcome;
  outcome.metrics[20] = {0.5, 0.25, 10};
  outcome.metrics[5] = {0.125, 0.0625, 10};
  outcome.items_per_profile = 6.5;
  outcome.profiles_injected = 9.0;
  outcome.query_rounds = 3.0;
  outcome.final_reward = 0.75;
  state.completed.push_back(outcome);
  state.in_progress.active = true;
  state.in_progress.target_index = 1;
  state.in_progress.episodes_done = 2;
  util::Rng rng(7);
  rng.UniformDouble();
  state.in_progress.episode_rng = rng.SaveState();
  state.in_progress.env.lifetime_queries = 17;
  state.in_progress.env.episodes_begun = 7;
  state.in_progress.env.proxy_reward_fallbacks = 1;
  state.in_progress.env.refit_rng = util::Rng(9).SaveState();
  state.in_progress.strategy_blob = std::string("\x01\x02\x00\x03", 4);
  return state;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const std::string dir = FreshDir("ckpt_roundtrip");
  const CampaignCheckpoint saved = TestCheckpoint();
  ASSERT_TRUE(SaveCampaignCheckpoint(saved, dir));

  CampaignCheckpoint loaded;
  const CheckpointSource source =
      LoadCampaignCheckpoint(dir, TestFingerprint(), &loaded);
  ASSERT_EQ(source, CheckpointSource::kPrimary);
  ASSERT_EQ(loaded.completed.size(), 1U);
  EXPECT_DOUBLE_EQ(loaded.completed[0].metrics.at(20).hr, 0.5);
  EXPECT_EQ(loaded.completed[0].metrics.at(5).count, 10U);
  EXPECT_DOUBLE_EQ(loaded.completed[0].final_reward, 0.75);
  EXPECT_TRUE(loaded.in_progress.active);
  EXPECT_EQ(loaded.in_progress.target_index, 1U);
  EXPECT_EQ(loaded.in_progress.episodes_done, 2U);
  EXPECT_EQ(loaded.in_progress.env.lifetime_queries, 17U);
  EXPECT_EQ(loaded.in_progress.strategy_blob,
            saved.in_progress.strategy_blob);
  // The RNG stream must continue from exactly where it stopped.
  util::Rng expected(7);
  expected.UniformDouble();
  util::Rng restored(1);
  restored.RestoreState(loaded.in_progress.episode_rng);
  EXPECT_EQ(restored.NextUint64(), expected.NextUint64());
}

TEST(CheckpointTest, FingerprintMismatchRejectsBothFiles) {
  const std::string dir = FreshDir("ckpt_fingerprint");
  ASSERT_TRUE(SaveCampaignCheckpoint(TestCheckpoint(), dir));
  CampaignFingerprint other = TestFingerprint();
  other.seed = 43;
  CampaignCheckpoint loaded;
  EXPECT_EQ(LoadCampaignCheckpoint(dir, other, &loaded),
            CheckpointSource::kNone);
}

TEST(CheckpointTest, MissingDirectoryLoadsNothing) {
  CampaignCheckpoint loaded;
  EXPECT_EQ(LoadCampaignCheckpoint(FreshDir("ckpt_missing"),
                                   TestFingerprint(), &loaded),
            CheckpointSource::kNone);
}

TEST(CheckpointTest, SavesRotatePrimaryToFallback) {
  const std::string dir = FreshDir("ckpt_rotate");
  CampaignCheckpoint first = TestCheckpoint();
  first.in_progress.episodes_done = 1;
  ASSERT_TRUE(SaveCampaignCheckpoint(first, dir));
  EXPECT_FALSE(std::filesystem::exists(CheckpointFallbackPath(dir)));
  CampaignCheckpoint second = TestCheckpoint();
  second.in_progress.episodes_done = 2;
  ASSERT_TRUE(SaveCampaignCheckpoint(second, dir));
  EXPECT_TRUE(std::filesystem::exists(CheckpointFallbackPath(dir)));

  CampaignCheckpoint loaded;
  ASSERT_EQ(LoadCampaignCheckpoint(dir, TestFingerprint(), &loaded),
            CheckpointSource::kPrimary);
  EXPECT_EQ(loaded.in_progress.episodes_done, 2U);
}

void CorruptFile(const std::string& path) {
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file) << path;
  file.seekp(24);  // inside the payload, past the header
  file.put('\x7f');
}

TEST(CheckpointTest, CorruptedPrimaryFallsBackToPreviousGood) {
  const std::string dir = FreshDir("ckpt_corrupt");
  CampaignCheckpoint first = TestCheckpoint();
  first.in_progress.episodes_done = 1;
  ASSERT_TRUE(SaveCampaignCheckpoint(first, dir));
  CampaignCheckpoint second = TestCheckpoint();
  second.in_progress.episodes_done = 2;
  ASSERT_TRUE(SaveCampaignCheckpoint(second, dir));
  CorruptFile(CheckpointPath(dir));

  CampaignCheckpoint loaded;
  ASSERT_EQ(LoadCampaignCheckpoint(dir, TestFingerprint(), &loaded),
            CheckpointSource::kFallback);
  EXPECT_EQ(loaded.in_progress.episodes_done, 1U);
}

TEST(CheckpointTest, TruncatedPrimaryIsDetected) {
  const std::string dir = FreshDir("ckpt_torn");
  ASSERT_TRUE(SaveCampaignCheckpoint(TestCheckpoint(), dir));
  // Simulate a torn write: chop the file mid-payload. The declared
  // payload_size no longer fits, which the loader treats as corruption.
  const std::string path = CheckpointPath(dir);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  CampaignCheckpoint loaded;
  EXPECT_EQ(LoadCampaignCheckpoint(dir, TestFingerprint(), &loaded),
            CheckpointSource::kNone);
}

// ---------------------------------------------------------------------------
// Crash-point injection through the save path (ISSUE 10): a crash inside
// ANY rotation phase must leave loadable state, and the loadable state
// must be one of the two checkpoints involved — never a third thing.

CampaignCheckpoint CheckpointAtEpisode(std::size_t episodes_done) {
  CampaignCheckpoint state = TestCheckpoint();
  state.in_progress.episodes_done = episodes_done;
  return state;
}

fault::CrashScheduleConfig ThrowAt(const std::string& site) {
  fault::CrashScheduleConfig schedule;
  schedule.enabled = true;
  schedule.mode = fault::CrashMode::kThrow;
  schedule.site = site;
  schedule.at_hit = 1;
  return schedule;
}

TEST(CheckpointCrashTest, EveryRotationPhaseCrashLeavesLoadableState) {
  const struct {
    const char* site;
    CheckpointSource expect_source;
    std::size_t expect_episode;  // 1 = old state A, 2 = new state B
  } phases[] = {
      // Nothing written yet: primary A untouched.
      {"checkpoint.pre_temp_write", CheckpointSource::kPrimary, 1},
      // Temp B complete, rotation not begun: primary A still loads first.
      {"checkpoint.pre_rotate", CheckpointSource::kPrimary, 1},
      // cur rotated to .prev, rename pending: the complete temp orphan B
      // is the newest state and must win over .prev's A.
      {"checkpoint.pre_rename", CheckpointSource::kTempOrphan, 2},
  };
  for (const auto& phase : phases) {
    SCOPED_TRACE(phase.site);
    const std::string dir = FreshDir(std::string("ckpt_crash_") +
                                     phase.site);
    ASSERT_TRUE(SaveCampaignCheckpoint(CheckpointAtEpisode(1), dir));
    fault::ArmCrashSchedule(ThrowAt(phase.site));
    EXPECT_THROW(SaveCampaignCheckpoint(CheckpointAtEpisode(2), dir),
                 fault::CrashForTest);
    fault::DisarmCrashSchedule();

    CampaignCheckpoint loaded;
    ASSERT_EQ(LoadCampaignCheckpoint(dir, TestFingerprint(), &loaded),
              phase.expect_source);
    EXPECT_EQ(loaded.in_progress.episodes_done, phase.expect_episode);

    // Recovery is read-only; the next clean save must restore the normal
    // primary/fallback shape and load the new state from the primary.
    ASSERT_TRUE(SaveCampaignCheckpoint(CheckpointAtEpisode(3), dir));
    ASSERT_EQ(LoadCampaignCheckpoint(dir, TestFingerprint(), &loaded),
              CheckpointSource::kPrimary);
    EXPECT_EQ(loaded.in_progress.episodes_done, 3U);
  }
}

TEST(CheckpointCrashTest, DoubleFaultStillRecoversLoadableState) {
  // First crash: between the renames (worst window — primary missing).
  const std::string dir = FreshDir("ckpt_double_fault");
  ASSERT_TRUE(SaveCampaignCheckpoint(CheckpointAtEpisode(1), dir));
  fault::ArmCrashSchedule(ThrowAt("checkpoint.pre_rename"));
  EXPECT_THROW(SaveCampaignCheckpoint(CheckpointAtEpisode(2), dir),
               fault::CrashForTest);
  fault::DisarmCrashSchedule();

  // Second crash, during the post-recovery save: before the temp write,
  // so the on-disk shape is unchanged (tmp=B orphan, prev=A, no cur).
  fault::ArmCrashSchedule(ThrowAt("checkpoint.pre_temp_write"));
  EXPECT_THROW(SaveCampaignCheckpoint(CheckpointAtEpisode(3), dir),
               fault::CrashForTest);
  fault::DisarmCrashSchedule();

  CampaignCheckpoint loaded;
  ASSERT_EQ(LoadCampaignCheckpoint(dir, TestFingerprint(), &loaded),
            CheckpointSource::kTempOrphan);
  EXPECT_EQ(loaded.in_progress.episodes_done, 2U);

  // Double fault with the orphan ALSO torn: only `.prev` survives.
  std::filesystem::resize_file(
      CheckpointTempPath(dir),
      std::filesystem::file_size(CheckpointTempPath(dir)) / 2);
  ASSERT_EQ(LoadCampaignCheckpoint(dir, TestFingerprint(), &loaded),
            CheckpointSource::kFallback);
  EXPECT_EQ(loaded.in_progress.episodes_done, 1U);
}

TEST(CheckpointCrashTest, UnfilteredScheduleIteratesEverySite) {
  // A site-less schedule at_hit=k must hit each of the three phases as k
  // walks 1..3 — the exhaustive sweep the soak driver relies on.
  const char* expected_sites[] = {"checkpoint.pre_temp_write",
                                  "checkpoint.pre_rotate",
                                  "checkpoint.pre_rename"};
  for (std::uint64_t k = 1; k <= 3; ++k) {
    const std::string dir =
        FreshDir("ckpt_sweep_" + std::to_string(k));
    fault::CrashScheduleConfig schedule;
    schedule.enabled = true;
    schedule.mode = fault::CrashMode::kThrow;
    schedule.at_hit = k;
    fault::ArmCrashSchedule(schedule);
    try {
      SaveCampaignCheckpoint(CheckpointAtEpisode(1), dir);
      FAIL() << "crash point " << k << " never fired";
    } catch (const fault::CrashForTest& crash) {
      EXPECT_EQ(crash.site, expected_sites[k - 1]);
      EXPECT_EQ(crash.hit, k);
    }
    fault::DisarmCrashSchedule();
    CampaignCheckpoint loaded;
    data::IoError error;
    const CheckpointSource source =
        LoadCampaignCheckpoint(dir, TestFingerprint(), &loaded, &error);
    if (source == CheckpointSource::kNone) {
      // Legal only for the pre-temp-write crash of the very first save —
      // there was no earlier state to preserve.
      EXPECT_EQ(k, 1U);
      EXPECT_NE(error.message.find("no loadable checkpoint"),
                std::string::npos);
    } else {
      EXPECT_EQ(loaded.in_progress.episodes_done, 1U);
    }
  }
}

TEST(CheckpointCrashTest, SeededScheduleIsDeterministicAndInRange) {
  const std::uint64_t universe = 17;
  for (std::uint64_t cycle = 0; cycle < 32; ++cycle) {
    const auto a = fault::CrashScheduleConfig::Seeded(7, cycle, universe);
    const auto b = fault::CrashScheduleConfig::Seeded(7, cycle, universe);
    EXPECT_EQ(a.at_hit, b.at_hit);
    EXPECT_GE(a.at_hit, 1U);
    EXPECT_LE(a.at_hit, universe);
  }
  // Different cycles must not all collapse onto one hit index.
  std::set<std::uint64_t> distinct;
  for (std::uint64_t cycle = 0; cycle < 32; ++cycle) {
    distinct.insert(
        fault::CrashScheduleConfig::Seeded(7, cycle, universe).at_hit);
  }
  EXPECT_GT(distinct.size(), 4U);
}

// ---------------------------------------------------------------------------
// Corruption corpus: every truncation and single-byte bit flip of the
// primary must either fall back to `.prev` or fail typed — never crash,
// never load garbage.

TEST(CheckpointCorruptionCorpusTest, TruncationAndBitFlipsNeverLoadGarbage) {
  // Shape the corpus once: prev = episode 1, cur = episode 2.
  const std::string dir = FreshDir("ckpt_corpus_master");
  ASSERT_TRUE(SaveCampaignCheckpoint(CheckpointAtEpisode(1), dir));
  ASSERT_TRUE(SaveCampaignCheckpoint(CheckpointAtEpisode(2), dir));
  std::string master;
  {
    std::ifstream in(CheckpointPath(dir), std::ios::binary);
    ASSERT_TRUE(in);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    master = buffer.str();
  }
  ASSERT_GT(master.size(), 20U);  // fixed header + some payload

  const std::string work = FreshDir("ckpt_corpus_work");
  std::filesystem::create_directories(work);
  std::filesystem::copy_file(
      CheckpointFallbackPath(dir), CheckpointFallbackPath(work),
      std::filesystem::copy_options::overwrite_existing);

  const auto check_variant = [&](const std::string& bytes,
                                 const std::string& what) {
    {
      std::ofstream out(CheckpointPath(work),
                        std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    CampaignCheckpoint loaded;
    data::IoError error;
    const CheckpointSource source =
        LoadCampaignCheckpoint(work, TestFingerprint(), &loaded, &error);
    if (source == CheckpointSource::kPrimary) {
      // A flip the CRC did not catch would be silent garbage: the only
      // way a corrupted primary may load as primary is not at all.
      ADD_FAILURE() << what << ": corrupted primary loaded as primary";
    } else if (source == CheckpointSource::kFallback) {
      EXPECT_EQ(loaded.in_progress.episodes_done, 1U) << what;
    } else {
      ASSERT_EQ(source, CheckpointSource::kNone) << what;
      EXPECT_FALSE(error.message.empty()) << what;
    }
  };

  // Truncate at every 64-byte boundary (and the empty file).
  for (std::size_t cut = 0; cut < master.size(); cut += 64) {
    check_variant(master.substr(0, cut),
                  "truncate@" + std::to_string(cut));
  }

  // One random single-bit flip per region, over many fixed-seed draws:
  // header [0,16), CRC [16,20), payload [20,end).
  util::Rng rng(testhelpers::TestSeed(97));
  const struct {
    const char* name;
    std::size_t begin;
    std::size_t end;
  } regions[] = {{"header", 0, 16},
                 {"crc", 16, 20},
                 {"payload", 20, master.size()}};
  for (const auto& region : regions) {
    for (int trial = 0; trial < 16; ++trial) {
      const std::size_t offset =
          region.begin +
          rng.NextUint64() % (region.end - region.begin);
      const int bit = static_cast<int>(rng.NextUint64() % 8);
      std::string flipped = master;
      flipped[offset] = static_cast<char>(
          static_cast<unsigned char>(flipped[offset]) ^ (1U << bit));
      check_variant(flipped, std::string(region.name) + " flip@" +
                                 std::to_string(offset) + " bit " +
                                 std::to_string(bit));
    }
  }

  // With no fallback either, every defect must surface a typed IoError.
  std::filesystem::remove(CheckpointFallbackPath(work));
  {
    std::string flipped = master;
    flipped[18] = static_cast<char>(
        static_cast<unsigned char>(flipped[18]) ^ 0x10);
    std::ofstream out(CheckpointPath(work),
                      std::ios::binary | std::ios::trunc);
    out.write(flipped.data(),
              static_cast<std::streamsize>(flipped.size()));
  }
  CampaignCheckpoint loaded;
  data::IoError error;
  ASSERT_EQ(LoadCampaignCheckpoint(work, TestFingerprint(), &loaded, &error),
            CheckpointSource::kNone);
  EXPECT_NE(error.message.find("CRC mismatch"), std::string::npos)
      << error.message;
  EXPECT_EQ(error.file, CheckpointPath(work));
}

TEST(CheckpointCrashTest, TempOrphanPreferredOverFallback) {
  // Hand-built double-fault shape: cur missing, complete tmp (newest),
  // valid prev (older) — the ladder must pick the orphan.
  const std::string dir = FreshDir("ckpt_orphan_pref");
  ASSERT_TRUE(SaveCampaignCheckpoint(CheckpointAtEpisode(1), dir));
  ASSERT_TRUE(SaveCampaignCheckpoint(CheckpointAtEpisode(2), dir));
  std::filesystem::rename(CheckpointPath(dir), CheckpointTempPath(dir));
  CampaignCheckpoint loaded;
  ASSERT_EQ(LoadCampaignCheckpoint(dir, TestFingerprint(), &loaded),
            CheckpointSource::kTempOrphan);
  EXPECT_EQ(loaded.in_progress.episodes_done, 2U);
}

// ---------------------------------------------------------------------------
// Kill-and-resume equivalence

CampaignConfig ResumableCampaign() {
  CampaignConfig config;
  config.env.budget = 9;
  config.env.query_interval = 3;
  config.env.num_pretend_users = 10;
  config.env.query_candidates = 50;
  config.episodes = 3;
  config.eval_users = 60;
  config.eval_negatives = 50;
  config.num_threads = 1;
  return config;
}

StrategyFactory LearningFactory() {
  const auto& tw = SharedTinyWorld();
  CopyAttackConfig agent_config;
  agent_config.learning_rate = 0.1f;
  return [&tw, agent_config](std::uint64_t seed) {
    return std::make_unique<CopyAttack>(
        &tw.world.dataset, &tw.artifacts.tree,
        &tw.artifacts.mf.user_embeddings(),
        &tw.artifacts.mf.item_embeddings(), agent_config, seed);
  };
}

void ExpectSameResult(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (const auto& [k, m] : a.metrics) {
    EXPECT_DOUBLE_EQ(m.hr, b.metrics.at(k).hr) << "k=" << k;
    EXPECT_DOUBLE_EQ(m.ndcg, b.metrics.at(k).ndcg) << "k=" << k;
  }
  EXPECT_DOUBLE_EQ(a.avg_items_per_profile, b.avg_items_per_profile);
  EXPECT_DOUBLE_EQ(a.avg_profiles_injected, b.avg_profiles_injected);
  EXPECT_DOUBLE_EQ(a.avg_query_rounds, b.avg_query_rounds);
  EXPECT_DOUBLE_EQ(a.avg_final_reward, b.avg_final_reward);
  EXPECT_EQ(a.num_target_items, b.num_target_items);
}

std::vector<data::ItemId> ResumableTargets() {
  const auto& tw = SharedTinyWorld();
  util::Rng rng(testhelpers::TestSeed(71));
  return data::SampleColdTargetItems(tw.world.dataset, 2, 10, rng);
}

TEST(CheckpointResumeTest, CheckpointedPathMatchesPlainSequentialRun) {
  const auto& tw = SharedTinyWorld();
  const auto targets = ResumableTargets();
  const auto factory = LearningFactory();
  const auto plain =
      RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(),
                  factory, targets, ResumableCampaign());
  CampaignConfig checkpointed = ResumableCampaign();
  checkpointed.checkpoint.dir = FreshDir("ckpt_equiv");
  const auto with_ckpt =
      RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(),
                  factory, targets, checkpointed);
  ExpectSameResult(plain, with_ckpt);
  EXPECT_GT(with_ckpt.checkpoint_saves, 0U);
  EXPECT_FALSE(with_ckpt.aborted);
}

TEST(CheckpointResumeTest, KillAndResumeReproducesUninterruptedRun) {
  const auto& tw = SharedTinyWorld();
  const auto targets = ResumableTargets();
  const auto factory = LearningFactory();
  const auto uninterrupted =
      RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(),
                  factory, targets, ResumableCampaign());

  // "Crash" mid-way through the second target (4 of 6 total episodes).
  CampaignConfig crashing = ResumableCampaign();
  crashing.checkpoint.dir = FreshDir("ckpt_kill");
  crashing.checkpoint.abort_after_episodes = 4;
  const auto aborted =
      RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(),
                  factory, targets, crashing);
  EXPECT_TRUE(aborted.aborted);
  EXPECT_LT(aborted.num_target_items, targets.size());

  // Resume: must land on exactly the uninterrupted outcome.
  CampaignConfig resuming = ResumableCampaign();
  resuming.checkpoint.dir = crashing.checkpoint.dir;
  resuming.checkpoint.resume = true;
  const auto resumed =
      RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(),
                  factory, targets, resuming);
  EXPECT_EQ(resumed.resumed_from, CheckpointSource::kPrimary);
  EXPECT_FALSE(resumed.aborted);
  ExpectSameResult(uninterrupted, resumed);
}

TEST(CheckpointResumeTest, ResumeAfterCorruptionUsesFallbackCheckpoint) {
  const auto& tw = SharedTinyWorld();
  const auto targets = ResumableTargets();
  const auto factory = LearningFactory();
  const auto uninterrupted =
      RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(),
                  factory, targets, ResumableCampaign());

  CampaignConfig crashing = ResumableCampaign();
  crashing.checkpoint.dir = FreshDir("ckpt_kill_corrupt");
  crashing.checkpoint.abort_after_episodes = 4;
  RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(), factory,
              targets, crashing);
  // The crash also mangled the freshest checkpoint; recovery must fall
  // back to the previous good one and still converge to the same result
  // (it just replays one more episode).
  CorruptFile(CheckpointPath(crashing.checkpoint.dir));

  CampaignConfig resuming = ResumableCampaign();
  resuming.checkpoint.dir = crashing.checkpoint.dir;
  resuming.checkpoint.resume = true;
  const auto resumed =
      RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(),
                  factory, targets, resuming);
  EXPECT_EQ(resumed.resumed_from, CheckpointSource::kFallback);
  ExpectSameResult(uninterrupted, resumed);
}

TEST(CheckpointResumeTest, ResumeWithFaultsEnabledIsStillExact) {
  // Faults, resilience, and checkpointing composed: the per-episode fault
  // and jitter streams are derived from episodes_begun, which the resume
  // state restores, so the interrupted run replays identically.
  const auto& tw = SharedTinyWorld();
  const auto targets = ResumableTargets();
  const auto factory = LearningFactory();
  CampaignConfig config = ResumableCampaign();
  config.env.fault = fault::FaultScheduleConfig::Light(27);
  config.env.resilience.enabled = true;
  const auto uninterrupted =
      RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(),
                  factory, targets, config);

  CampaignConfig crashing = config;
  crashing.checkpoint.dir = FreshDir("ckpt_kill_faulty");
  crashing.checkpoint.abort_after_episodes = 2;
  RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(), factory,
              targets, crashing);

  CampaignConfig resuming = config;
  resuming.checkpoint.dir = crashing.checkpoint.dir;
  resuming.checkpoint.resume = true;
  const auto resumed =
      RunCampaign(tw.world.dataset, tw.split.train, tw.ModelFactory(),
                  factory, targets, resuming);
  ExpectSameResult(uninterrupted, resumed);
}

}  // namespace
}  // namespace copyattack::core
