#include <algorithm>

#include <gtest/gtest.h>

#include "core/copy_attack.h"
#include "core/environment.h"
#include "core/proxy.h"
#include "rec/pinsage_lite.h"
#include "test_helpers.h"
#include "test_seed.h"

namespace copyattack::core {
namespace {

using testhelpers::SharedTinyWorld;

TEST(ProxyTest, SpliceInsertsAfterAnchor) {
  const data::Profile window = {1, 2, 3, 4};
  const data::Profile spliced = SpliceTargetIntoProfile(window, 2, 99);
  EXPECT_EQ(spliced, (data::Profile{1, 2, 99, 3, 4}));
}

TEST(ProxyTest, SpliceAppendsWhenAnchorMissing) {
  const data::Profile window = {1, 2};
  const data::Profile spliced = SpliceTargetIntoProfile(window, 7, 99);
  EXPECT_EQ(spliced, (data::Profile{1, 2, 99}));
}

TEST(ProxyTest, SpliceIsIdempotentForPresentTarget) {
  const data::Profile window = {1, 99, 2};
  EXPECT_EQ(SpliceTargetIntoProfile(window, 1, 99), window);
}

TEST(ProxyTest, FindsCooccurringOverlapItem) {
  // Hand-built world: target item 5 is not in the source domain; item 2
  // co-occurs with it heavily in the target domain and has source holders.
  data::CrossDomainDataset cd("proxy", 6);
  cd.overlap[2] = true;
  cd.overlap[3] = true;
  // Target-domain users: 5 always appears with 2; 3 appears elsewhere.
  cd.target.AddUser({5, 2});
  cd.target.AddUser({2, 5});
  cd.target.AddUser({5, 2, 0});
  cd.target.AddUser({3, 1});
  cd.source.AddUser({2});
  cd.source.AddUser({3});

  const data::ItemId proxy = FindProxyItem(cd, cd.target, 5);
  EXPECT_EQ(proxy, 2U);
}

TEST(ProxyTest, ReturnsNoItemWithoutCooccurrence) {
  data::CrossDomainDataset cd("proxy", 4);
  cd.overlap[0] = true;
  cd.target.AddUser({3});  // target item 3 co-occurs with nothing
  cd.source.AddUser({0});
  EXPECT_EQ(FindProxyItem(cd, cd.target, 3), data::kNoItem);
}

TEST(ProxyTest, CopyAttackUsesProxyForNonSourceItem) {
  const auto& tw = SharedTinyWorld();
  // Find a target-domain item that is NOT attackable directly (outside
  // the overlap or without source holders).
  data::ItemId orphan = data::kNoItem;
  for (data::ItemId item = 0; item < tw.world.dataset.target.num_items();
       ++item) {
    if (tw.world.dataset.SourceHolders(item).empty() &&
        !tw.world.dataset.target.ItemProfile(item).empty()) {
      orphan = item;
      break;
    }
  }
  ASSERT_NE(orphan, data::kNoItem)
      << "tiny world should contain a non-overlap target item";

  CopyAttackConfig config;
  config.allow_proxy = true;
  CopyAttack attack(&tw.world.dataset, &tw.artifacts.tree,
                    &tw.artifacts.mf.user_embeddings(),
                    &tw.artifacts.mf.item_embeddings(), config, 1);
  attack.BeginTargetItem(orphan);
  EXPECT_NE(attack.anchor_item(), orphan);
  EXPECT_FALSE(
      tw.world.dataset.SourceHolders(attack.anchor_item()).empty());
  EXPECT_FALSE(attack.candidates().empty());

  // A full episode must inject profiles that all contain the orphan item.
  rec::PinSageLite model = tw.model;
  EnvConfig env_config;
  env_config.budget = 6;
  env_config.num_pretend_users = 8;
  env_config.query_candidates = 40;
  env_config.seed = 5;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                        env_config);
  env.Reset(orphan);
  util::Rng rng(testhelpers::TestSeed(3));
  attack.RunEpisode(env, rng);

  const data::Dataset& polluted = env.black_box().polluted();
  const std::size_t base =
      tw.split.train.num_users() + env.pretend_users().size();
  ASSERT_GT(polluted.num_users(), base);
  for (data::UserId u = static_cast<data::UserId>(base);
       u < polluted.num_users(); ++u) {
    EXPECT_TRUE(polluted.HasInteraction(u, orphan))
        << "proxy-built profiles must still contain the target item";
  }
}

TEST(DemotionTest, RewardIsComplementOfHitRatio) {
  const auto& tw = SharedTinyWorld();
  rec::PinSageLite promote_model = tw.model;
  rec::PinSageLite demote_model = tw.model;

  EnvConfig promote_config;
  promote_config.budget = 6;
  promote_config.num_pretend_users = 10;
  promote_config.query_candidates = 40;
  promote_config.seed = 11;
  EnvConfig demote_config = promote_config;
  demote_config.goal = AttackGoal::kDemote;

  AttackEnvironment promote_env(tw.world.dataset, tw.split.train,
                                &promote_model, promote_config);
  AttackEnvironment demote_env(tw.world.dataset, tw.split.train,
                               &demote_model, demote_config);
  promote_env.Reset(tw.cold_target);
  demote_env.Reset(tw.cold_target);

  const double promote_reward = promote_env.QueryReward();
  const double demote_reward = demote_env.QueryReward();
  EXPECT_NEAR(promote_reward + demote_reward, 1.0, 1e-9);
}

TEST(DemotionTest, DemotingAPopularItemIsObservable) {
  // Statistical effect claim (dilution lowers a popular item's HR) —
  // only guaranteed on the controlled default world.
  if (testhelpers::SeedOverrideActive()) {
    GTEST_SKIP() << "effect size not guaranteed under COPYATTACK_TEST_SEED";
  }
  const auto& tw = SharedTinyWorld();
  // Pick the most popular overlapping item with holders.
  data::ItemId popular = data::kNoItem;
  for (const data::ItemId item :
       tw.split.train.ItemsByPopularity()) {
    if (tw.world.dataset.overlap[item] &&
        !tw.world.dataset.SourceHolders(item).empty()) {
      popular = item;
      break;
    }
  }
  ASSERT_NE(popular, data::kNoItem);

  rec::PinSageLite model = tw.model;
  EnvConfig config;
  config.goal = AttackGoal::kDemote;
  config.budget = 12;
  config.num_pretend_users = 10;
  config.query_candidates = 40;
  config.seed = 13;
  AttackEnvironment env(tw.world.dataset, tw.split.train, &model, config);
  env.Reset(popular);

  const double hr_before = env.RawHitRatio();
  // Inject long raw profiles of users NOT holding the popular item: their
  // representations dilute the item's neighborhood.
  util::Rng rng(testhelpers::TestSeed(17));
  while (!env.done()) {
    const data::UserId u = static_cast<data::UserId>(
        rng.UniformUint64(tw.world.dataset.source.num_users()));
    data::Profile profile = tw.world.dataset.source.UserProfile(u);
    if (profile.empty()) continue;
    if (!tw.world.dataset.source.HasInteraction(u, popular)) {
      profile.push_back(popular);  // interact, to enter its neighborhood
    }
    env.Step(std::move(profile));
  }
  const double hr_after = env.RawHitRatio();
  // Demotion is hard with implicit feedback; we only require that the
  // environment exposes the effect direction coherently (no increase).
  EXPECT_LE(hr_after, hr_before + 0.1);
}

}  // namespace
}  // namespace copyattack::core
