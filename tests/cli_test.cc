#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli.h"

namespace copyattack::tools {
namespace {

/// Runs the CLI with the given arguments and captures stdout text.
int RunTool(const std::vector<std::string>& args, std::string* output) {
  std::vector<const char*> argv = {"copyattack"};
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  std::ostringstream out;
  const int code = RunCli(static_cast<int>(argv.size()), argv.data(), out);
  *output = out.str();
  return code;
}

std::string TempPrefix(const char* name) {
  return testing::TempDir() + "/" + name;
}

void RemoveWorld(const std::string& prefix) {
  for (const char* suffix : {".meta.csv", ".target.csv", ".source.csv"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(CliTest, HelpListsCommandsAndFlags) {
  std::string output;
  EXPECT_EQ(RunTool({"help"}, &output), 0);
  EXPECT_NE(output.find("generate"), std::string::npos);
  EXPECT_NE(output.find("--budget"), std::string::npos);
}

TEST(CliTest, NoCommandPrintsHelp) {
  std::string output;
  EXPECT_EQ(RunTool({}, &output), 0);
  EXPECT_NE(output.find("usage"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  std::string output;
  EXPECT_NE(RunTool({"frobnicate"}, &output), 0);
  EXPECT_NE(output.find("unknown command"), std::string::npos);
}

TEST(CliTest, UnknownFlagFails) {
  std::string output;
  EXPECT_NE(RunTool({"stats", "--bogus=1"}, &output), 0);
  EXPECT_NE(output.find("unknown flag"), std::string::npos);
}

TEST(CliTest, GenerateStatsRoundTrip) {
  const std::string prefix = TempPrefix("cli_world");
  std::string output;
  ASSERT_EQ(RunTool({"generate", "--config=tiny", "--out", prefix}, &output), 0);
  EXPECT_NE(output.find("written:"), std::string::npos);

  ASSERT_EQ(RunTool({"stats", "--data", prefix}, &output), 0);
  EXPECT_NE(output.find("# of Users"), std::string::npos);
  EXPECT_NE(output.find("Tiny"), std::string::npos);
  RemoveWorld(prefix);
}

TEST(CliTest, GenerateRejectsBadConfig) {
  std::string output;
  EXPECT_NE(RunTool({"generate", "--config=huge", "--out=/tmp/x"}, &output), 0);
  EXPECT_NE(output.find("unknown --config"), std::string::npos);
}

TEST(CliTest, StatsFailsOnMissingData) {
  std::string output;
  EXPECT_NE(RunTool({"stats", "--data=/nonexistent/prefix"}, &output), 0);
  EXPECT_NE(output.find("could not load"), std::string::npos);
}

TEST(CliTest, TrainReportsQuality) {
  const std::string prefix = TempPrefix("cli_train_world");
  std::string output;
  ASSERT_EQ(RunTool({"generate", "--config=tiny", "--out", prefix}, &output), 0);
  ASSERT_EQ(RunTool({"train", "--data", prefix, "--max-epochs=5",
                 "--patience=2"},
                &output),
            0);
  EXPECT_NE(output.find("test  HR@10"), std::string::npos);
  RemoveWorld(prefix);
}

TEST(CliTest, AttackRunsEndToEnd) {
  const std::string prefix = TempPrefix("cli_attack_world");
  std::string output;
  ASSERT_EQ(RunTool({"generate", "--config=tiny", "--out", prefix}, &output), 0);
  ASSERT_EQ(RunTool({"attack", "--data", prefix, "--method=TargetAttack40",
                 "--targets=2", "--budget=6"},
                &output),
            0);
  EXPECT_NE(output.find("WithoutAttack"), std::string::npos);
  EXPECT_NE(output.find("TargetAttack40"), std::string::npos);
  RemoveWorld(prefix);
}

TEST(CliTest, AttackRejectsUnknownMethod) {
  const std::string prefix = TempPrefix("cli_method_world");
  std::string output;
  ASSERT_EQ(RunTool({"generate", "--config=tiny", "--out", prefix}, &output), 0);
  EXPECT_NE(RunTool({"attack", "--data", prefix, "--method=VoodooAttack"},
                &output),
            0);
  EXPECT_NE(output.find("unknown --method"), std::string::npos);
  RemoveWorld(prefix);
}

}  // namespace
}  // namespace copyattack::tools
