#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli.h"

namespace copyattack::tools {
namespace {

/// Runs the CLI with the given arguments and captures stdout text.
int RunTool(const std::vector<std::string>& args, std::string* output) {
  std::vector<const char*> argv = {"copyattack"};
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  std::ostringstream out;
  const int code = RunCli(static_cast<int>(argv.size()), argv.data(), out);
  *output = out.str();
  return code;
}

std::string TempPrefix(const char* name) {
  return testing::TempDir() + "/" + name;
}

void RemoveWorld(const std::string& prefix) {
  for (const char* suffix : {".meta.csv", ".target.csv", ".source.csv"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(CliTest, HelpListsCommandsAndFlags) {
  std::string output;
  EXPECT_EQ(RunTool({"help"}, &output), 0);
  EXPECT_NE(output.find("generate"), std::string::npos);
  EXPECT_NE(output.find("--budget"), std::string::npos);
}

TEST(CliTest, NoCommandPrintsHelp) {
  std::string output;
  EXPECT_EQ(RunTool({}, &output), 0);
  EXPECT_NE(output.find("usage"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  std::string output;
  EXPECT_NE(RunTool({"frobnicate"}, &output), 0);
  EXPECT_NE(output.find("unknown command"), std::string::npos);
}

TEST(CliTest, UnknownFlagFails) {
  std::string output;
  EXPECT_NE(RunTool({"stats", "--bogus=1"}, &output), 0);
  EXPECT_NE(output.find("unknown flag"), std::string::npos);
}

TEST(CliTest, GenerateStatsRoundTrip) {
  const std::string prefix = TempPrefix("cli_world");
  std::string output;
  ASSERT_EQ(RunTool({"generate", "--config=tiny", "--out", prefix}, &output), 0);
  EXPECT_NE(output.find("written:"), std::string::npos);

  ASSERT_EQ(RunTool({"stats", "--data", prefix}, &output), 0);
  EXPECT_NE(output.find("# of Users"), std::string::npos);
  EXPECT_NE(output.find("Tiny"), std::string::npos);
  RemoveWorld(prefix);
}

TEST(CliTest, GenerateRejectsBadConfig) {
  std::string output;
  EXPECT_NE(RunTool({"generate", "--config=huge", "--out=/tmp/x"}, &output), 0);
  EXPECT_NE(output.find("unknown --config"), std::string::npos);
}

TEST(CliTest, StatsFailsOnMissingData) {
  std::string output;
  EXPECT_NE(RunTool({"stats", "--data=/nonexistent/prefix"}, &output), 0);
  EXPECT_NE(output.find("could not load"), std::string::npos);
}

TEST(CliTest, TrainReportsQuality) {
  const std::string prefix = TempPrefix("cli_train_world");
  std::string output;
  ASSERT_EQ(RunTool({"generate", "--config=tiny", "--out", prefix}, &output), 0);
  ASSERT_EQ(RunTool({"train", "--data", prefix, "--max-epochs=5",
                 "--patience=2"},
                &output),
            0);
  EXPECT_NE(output.find("test  HR@10"), std::string::npos);
  RemoveWorld(prefix);
}

TEST(CliTest, AttackRunsEndToEnd) {
  const std::string prefix = TempPrefix("cli_attack_world");
  std::string output;
  ASSERT_EQ(RunTool({"generate", "--config=tiny", "--out", prefix}, &output), 0);
  ASSERT_EQ(RunTool({"attack", "--data", prefix, "--method=TargetAttack40",
                 "--targets=2", "--budget=6"},
                &output),
            0);
  EXPECT_NE(output.find("WithoutAttack"), std::string::npos);
  EXPECT_NE(output.find("TargetAttack40"), std::string::npos);
  RemoveWorld(prefix);
}

TEST(CliTest, JobsFlagRejectsNonPositiveValues) {
  for (const char* bad : {"--jobs=0", "--jobs=-3", "--jobs=two"}) {
    std::string output;
    EXPECT_EQ(RunTool({"attack", bad}, &output), 2) << bad;
    EXPECT_NE(output.find("expects a positive integer"), std::string::npos)
        << output;
    EXPECT_NE(output.find("--jobs"), std::string::npos) << output;
  }
}

TEST(CliTest, AttackWithJobsRoutesThroughShardedRunner) {
  const std::string prefix = TempPrefix("cli_jobs_world");
  std::string output;
  ASSERT_EQ(RunTool({"generate", "--config=tiny", "--out", prefix}, &output), 0);
  ASSERT_EQ(RunTool({"attack", "--data", prefix, "--method=TargetAttack40",
                 "--targets=2", "--budget=6", "--jobs=2"},
                &output),
            0);
  EXPECT_NE(output.find("TargetAttack40"), std::string::npos);
  EXPECT_NE(output.find("throughput:"), std::string::npos);
  EXPECT_NE(output.find("2 jobs"), std::string::npos);
  RemoveWorld(prefix);
}

TEST(CliTest, AttackServerDrainsQueueCsvAndReportsFailures) {
  const std::string prefix = TempPrefix("cli_server_world");
  const std::string queue_path = TempPrefix("cli_server_jobs.csv");
  std::string output;
  ASSERT_EQ(RunTool({"generate", "--config=tiny", "--out", prefix}, &output), 0);
  {
    std::ofstream queue(queue_path);
    queue << "id,method,targets,budget,episodes,seed\n"
          << "promo-a,TargetAttack40,2,5,1,9\n"
          << "promo-b,NoSuchMethod,2,5,1,9\n";
  }

  EXPECT_EQ(RunTool({"attack-server", "--data", prefix,
                 "--queue", queue_path},
                &output),
            1);
  EXPECT_NE(output.find("serving 2 promotion jobs"), std::string::npos);
  EXPECT_NE(output.find("promo-a:TargetAttack40"), std::string::npos);
  EXPECT_NE(output.find("campaigns/s"), std::string::npos);
  EXPECT_NE(output.find("unknown --method 'NoSuchMethod'"), std::string::npos);
  // The rejection must teach: it lists every registered method name.
  EXPECT_NE(output.find("registered methods:"), std::string::npos);
  EXPECT_NE(output.find("SurrogateTransfer"), std::string::npos);
  EXPECT_NE(output.find("served 1 jobs, 1 failed"), std::string::npos);
  std::remove(queue_path.c_str());
  RemoveWorld(prefix);
}

TEST(CliTest, AttackServerFailsOnMalformedQueue) {
  const std::string prefix = TempPrefix("cli_server_bad_world");
  const std::string queue_path = TempPrefix("cli_server_bad_jobs.csv");
  std::string output;
  ASSERT_EQ(RunTool({"generate", "--config=tiny", "--out", prefix}, &output), 0);
  {
    std::ofstream queue(queue_path);
    queue << "promo-a,TargetAttack40,2,5\n";  // too few fields
  }
  EXPECT_EQ(RunTool({"attack-server", "--data", prefix,
                 "--queue", queue_path},
                &output),
            2);
  EXPECT_NE(output.find("expected 6 fields"), std::string::npos);

  EXPECT_EQ(RunTool({"attack-server", "--data", prefix,
                 "--queue=/nonexistent/queue.csv"},
                &output),
            1);
  EXPECT_NE(output.find("could not open"), std::string::npos);
  std::remove(queue_path.c_str());
  RemoveWorld(prefix);
}

TEST(CliTest, AttackRejectsUnknownMethod) {
  const std::string prefix = TempPrefix("cli_method_world");
  std::string output;
  ASSERT_EQ(RunTool({"generate", "--config=tiny", "--out", prefix}, &output), 0);
  EXPECT_NE(RunTool({"attack", "--data", prefix, "--method=VoodooAttack"},
                &output),
            0);
  EXPECT_NE(output.find("unknown --method"), std::string::npos);
  RemoveWorld(prefix);
}

}  // namespace
}  // namespace copyattack::tools
