// Shard-determinism tests of the campaign-parallel sharded runner
// (ISSUE 6): the tentpole's contract is that outcomes are bit-identical
// to the sequential runner under jobs=1 and invariant to the shard
// count — including under a PR-5 fault schedule, with batched oracle
// queries on or off, and across a kill-and-resume mid-campaign.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/copy_attack.h"
#include "core/parallel_runner.h"
#include "core/runner.h"
#include "fault/fault_injector.h"
#include "serve/attack_server.h"
#include "test_helpers.h"
#include "test_seed.h"

namespace copyattack::core {
namespace {

using testhelpers::SharedTinyWorld;
using testhelpers::TinyWorld;

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<data::ItemId> TestTargets(const TinyWorld& world,
                                      std::size_t count) {
  util::Rng rng(testhelpers::TestSeed(53));
  return data::SampleColdTargetItems(world.world.dataset, count, 10, rng);
}

StrategyFactory CopyAttackFactory(const TinyWorld& world) {
  return [&world](std::uint64_t seed) {
    return std::make_unique<CopyAttack>(
        &world.world.dataset, &world.artifacts.tree,
        &world.artifacts.mf.user_embeddings(),
        &world.artifacts.mf.item_embeddings(), CopyAttackConfig{}, seed);
  };
}

CampaignConfig SmallCampaign() {
  CampaignConfig config;
  config.env.budget = 5;
  config.env.num_pretend_users = 6;
  config.env.query_candidates = 20;
  config.episodes = 2;
  config.eval_users = 20;
  config.seed = testhelpers::TestSeed(59);
  return config;
}

void ExpectOutcomesEqual(const TargetOutcomeState& a,
                         const TargetOutcomeState& b) {
  EXPECT_EQ(a.final_reward, b.final_reward);
  EXPECT_EQ(a.profiles_injected, b.profiles_injected);
  EXPECT_EQ(a.items_per_profile, b.items_per_profile);
  EXPECT_EQ(a.query_rounds, b.query_rounds);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (const auto& [k, metrics] : a.metrics) {
    const auto it = b.metrics.find(k);
    ASSERT_NE(it, b.metrics.end());
    EXPECT_EQ(metrics.hr, it->second.hr);
    EXPECT_EQ(metrics.ndcg, it->second.ndcg);
    EXPECT_EQ(metrics.count, it->second.count);
  }
}

void ExpectResultsEqual(const ParallelCampaignResult& a,
                        const ParallelCampaignResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  ASSERT_EQ(a.completed, b.completed);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    if (a.completed[i] == 0) continue;
    SCOPED_TRACE("outcome " + std::to_string(i));
    ExpectOutcomesEqual(a.outcomes[i], b.outcomes[i]);
  }
  EXPECT_EQ(a.aggregate.method, b.aggregate.method);
  EXPECT_EQ(a.aggregate.num_target_items, b.aggregate.num_target_items);
  EXPECT_EQ(a.aggregate.avg_final_reward, b.aggregate.avg_final_reward);
  EXPECT_EQ(a.aggregate.avg_profiles_injected,
            b.aggregate.avg_profiles_injected);
}

ParallelCampaignResult RunShardedWith(
    const TinyWorld& world, const StrategyFactory& factory,
    const std::vector<data::ItemId>& targets, const CampaignConfig& config,
    const ParallelRunnerOptions& options) {
  const ParallelCampaignRunner runner(world.world.dataset,
                                      world.split.train,
                                      world.ModelFactory(), factory,
                                      options);
  return runner.Run(targets, config);
}

ParallelCampaignResult RunSharded(const TinyWorld& world,
                                  const std::vector<data::ItemId>& targets,
                                  const CampaignConfig& config,
                                  const ParallelRunnerOptions& options) {
  return RunShardedWith(world, CopyAttackFactory(world), targets, config,
                        options);
}

/// Resolves an attack-zoo method exactly as the CLI and server do, so the
/// determinism contract is tested on the real registration path.
StrategyFactory ZooFactory(const TinyWorld& world,
                           const std::string& method) {
  const serve::StrategySpec spec = serve::MakeStrategyFactory(
      world.world.dataset, world.artifacts, method);
  EXPECT_TRUE(spec.factory) << spec.error;
  return spec.factory;
}

TEST(ParallelRunner, JobsOneBitIdenticalToSequentialRunner) {
  const TinyWorld& world = SharedTinyWorld();
  const auto targets = TestTargets(world, 3);
  ASSERT_FALSE(targets.empty());
  const CampaignConfig config = SmallCampaign();

  const CampaignResult sequential =
      RunCampaign(world.world.dataset, world.split.train,
                  world.ModelFactory(), CopyAttackFactory(world), targets,
                  config);

  ParallelRunnerOptions options;
  options.jobs = 1;
  const ParallelCampaignResult sharded =
      RunSharded(world, targets, config, options);

  EXPECT_EQ(sharded.aggregate.method, sequential.method);
  EXPECT_EQ(sharded.aggregate.num_target_items,
            sequential.num_target_items);
  EXPECT_EQ(sharded.aggregate.avg_final_reward,
            sequential.avg_final_reward);
  EXPECT_EQ(sharded.aggregate.avg_profiles_injected,
            sequential.avg_profiles_injected);
  EXPECT_EQ(sharded.aggregate.avg_items_per_profile,
            sequential.avg_items_per_profile);
  EXPECT_EQ(sharded.aggregate.avg_query_rounds,
            sequential.avg_query_rounds);
  for (const auto& [k, metrics] : sequential.metrics) {
    const auto it = sharded.aggregate.metrics.find(k);
    ASSERT_NE(it, sharded.aggregate.metrics.end());
    EXPECT_EQ(metrics.hr, it->second.hr);
    EXPECT_EQ(metrics.ndcg, it->second.ndcg);
  }
}

TEST(ParallelRunner, OutcomesInvariantToShardCount) {
  const TinyWorld& world = SharedTinyWorld();
  const auto targets = TestTargets(world, 4);
  ASSERT_GE(targets.size(), 2U);
  const CampaignConfig config = SmallCampaign();

  ParallelRunnerOptions one;
  one.jobs = 1;
  one.shards = 1;
  ParallelRunnerOptions two;
  two.jobs = 2;
  two.shards = 2;
  ParallelRunnerOptions many;
  many.jobs = 2;
  many.shards = targets.size();

  const ParallelCampaignResult r1 = RunSharded(world, targets, config, one);
  const ParallelCampaignResult r2 = RunSharded(world, targets, config, two);
  const ParallelCampaignResult rn =
      RunSharded(world, targets, config, many);

  ExpectResultsEqual(r1, r2);
  ExpectResultsEqual(r1, rn);
  ASSERT_EQ(r2.shards.size(), 2U);
  EXPECT_NE(r2.shards[0].stream_seed, r2.shards[1].stream_seed);
  EXPECT_EQ(r2.shards[0].num_items + r2.shards[1].num_items,
            targets.size());
}

TEST(ParallelRunner, ShardInvarianceHoldsUnderFaultSchedule) {
  const TinyWorld& world = SharedTinyWorld();
  const auto targets = TestTargets(world, 3);
  ASSERT_GE(targets.size(), 2U);
  CampaignConfig config = SmallCampaign();
  config.env.fault =
      fault::FaultScheduleConfig::Light(testhelpers::TestSeed(61));
  config.env.resilience.enabled = true;
  config.env.resilience.seed = testhelpers::TestSeed(67);

  ParallelRunnerOptions one;
  one.jobs = 1;
  one.shards = 1;
  ParallelRunnerOptions many;
  many.jobs = 2;
  many.shards = targets.size();

  const ParallelCampaignResult r1 = RunSharded(world, targets, config, one);
  const ParallelCampaignResult rn =
      RunSharded(world, targets, config, many);
  ExpectResultsEqual(r1, rn);
}

TEST(ParallelRunner, BatchedQueriesMatchPerUserQueries) {
  const TinyWorld& world = SharedTinyWorld();
  const auto targets = TestTargets(world, 2);
  ASSERT_FALSE(targets.empty());
  const CampaignConfig config = SmallCampaign();

  ParallelRunnerOptions batched;
  batched.jobs = 1;
  batched.batched_queries = true;
  ParallelRunnerOptions unbatched;
  unbatched.jobs = 1;
  unbatched.batched_queries = false;

  ExpectResultsEqual(RunSharded(world, targets, config, batched),
                     RunSharded(world, targets, config, unbatched));
}

TEST(ParallelRunner, BatchedQueriesMatchPerUserQueriesUnderFaults) {
  const TinyWorld& world = SharedTinyWorld();
  const auto targets = TestTargets(world, 2);
  ASSERT_FALSE(targets.empty());
  CampaignConfig config = SmallCampaign();
  config.env.fault =
      fault::FaultScheduleConfig::Light(testhelpers::TestSeed(71));
  config.env.resilience.enabled = true;
  config.env.resilience.seed = testhelpers::TestSeed(73);

  ParallelRunnerOptions batched;
  batched.jobs = 1;
  batched.batched_queries = true;
  ParallelRunnerOptions unbatched;
  unbatched.jobs = 1;
  unbatched.batched_queries = false;

  ExpectResultsEqual(RunSharded(world, targets, config, batched),
                     RunSharded(world, targets, config, unbatched));
}

TEST(ParallelRunner, CancelHookAbortsAtBoundaryAndResumeIsExact) {
  // Cooperative cancellation (ISSUE 10): the watchdog/drain hook stops
  // the run at an episode boundary — where the checkpoint is already
  // flushed — so cancel-then-resume obeys the exact same bit-identical
  // contract as crash-then-resume.
  const TinyWorld& world = SharedTinyWorld();
  const auto targets = TestTargets(world, 3);
  ASSERT_GE(targets.size(), 2U);
  const CampaignConfig config = SmallCampaign();
  const std::string dir = FreshDir("parallel_runner_cancel");

  ParallelRunnerOptions plain;
  plain.jobs = 1;
  const ParallelCampaignResult uninterrupted =
      RunSharded(world, targets, config, plain);

  ParallelRunnerOptions cancel = plain;
  cancel.checkpoint.dir = dir;
  auto polls = std::make_shared<std::size_t>(0);
  cancel.cancel = [polls] { return ++*polls > 4; };
  const ParallelCampaignResult canceled =
      RunSharded(world, targets, config, cancel);
  EXPECT_TRUE(canceled.aggregate.aborted);
  EXPECT_LT(canceled.aggregate.num_target_items, targets.size());

  ParallelRunnerOptions resume = plain;
  resume.checkpoint.dir = dir;
  resume.checkpoint.resume = true;
  const ParallelCampaignResult resumed =
      RunSharded(world, targets, config, resume);
  EXPECT_FALSE(resumed.aggregate.aborted);
  EXPECT_NE(resumed.aggregate.resumed_from, CheckpointSource::kNone);
  ExpectResultsEqual(uninterrupted, resumed);
}

TEST(ParallelRunner, NullCancelHookNeverAborts) {
  const TinyWorld& world = SharedTinyWorld();
  const auto targets = TestTargets(world, 2);
  ParallelRunnerOptions options;
  options.jobs = 1;
  EXPECT_FALSE(static_cast<bool>(options.cancel));  // default: never
  const ParallelCampaignResult result =
      RunSharded(world, targets, SmallCampaign(), options);
  EXPECT_FALSE(result.aggregate.aborted);
  EXPECT_EQ(result.aggregate.num_target_items, targets.size());
}

TEST(ParallelRunner, KillAndResumeMatchesUninterruptedRun) {
  const TinyWorld& world = SharedTinyWorld();
  const auto targets = TestTargets(world, 3);
  ASSERT_GE(targets.size(), 2U);
  const CampaignConfig config = SmallCampaign();
  const std::string dir = FreshDir("parallel_runner_resume");

  // Reference: straight through, no checkpointing.
  ParallelRunnerOptions plain;
  plain.jobs = 1;
  plain.shards = 2;
  const ParallelCampaignResult uninterrupted =
      RunSharded(world, targets, config, plain);

  // Crash after 3 episodes (jobs=1 makes the abort point deterministic),
  // then resume from the per-shard checkpoints.
  ParallelRunnerOptions crash = plain;
  crash.checkpoint.dir = dir;
  crash.checkpoint.abort_after_episodes = 3;
  const ParallelCampaignResult aborted =
      RunSharded(world, targets, config, crash);
  EXPECT_TRUE(aborted.aggregate.aborted);
  EXPECT_LT(aborted.aggregate.num_target_items, targets.size());

  ParallelRunnerOptions resume = plain;
  resume.checkpoint.dir = dir;
  resume.checkpoint.resume = true;
  const ParallelCampaignResult resumed =
      RunSharded(world, targets, config, resume);
  EXPECT_FALSE(resumed.aggregate.aborted);
  EXPECT_NE(resumed.aggregate.resumed_from, CheckpointSource::kNone);
  ExpectResultsEqual(uninterrupted, resumed);
}

// The attack-zoo strategies (ISSUE 8) enter the same sharded-runner
// determinism contract as CopyAttack: outcomes invariant to the shard
// count, including under a PR-5 fault schedule.
TEST(ParallelRunner, AttackZooShardInvarianceUnderFaultSchedule) {
  const TinyWorld& world = SharedTinyWorld();
  const auto targets = TestTargets(world, 3);
  ASSERT_GE(targets.size(), 2U);
  CampaignConfig config = SmallCampaign();
  config.env.fault =
      fault::FaultScheduleConfig::Light(testhelpers::TestSeed(61));
  config.env.resilience.enabled = true;
  config.env.resilience.seed = testhelpers::TestSeed(67);

  ParallelRunnerOptions one;
  one.jobs = 1;
  one.shards = 1;
  ParallelRunnerOptions many;
  many.jobs = 2;
  many.shards = targets.size();

  for (const std::string method : {"SurrogateTransfer", "Influence"}) {
    SCOPED_TRACE(method);
    const StrategyFactory factory = ZooFactory(world, method);
    const ParallelCampaignResult r1 =
        RunShardedWith(world, factory, targets, config, one);
    const ParallelCampaignResult rn =
        RunShardedWith(world, factory, targets, config, many);
    ExpectResultsEqual(r1, rn);
  }
}

// Kill-and-resume bit-equality for the zoo strategies: the abort lands
// mid-target (episodes=2 per target, abort after 3), so the resumed run
// must rebuild each strategy via SaveState/LoadState and continue the
// exact trajectory — under an active fault schedule.
TEST(ParallelRunner, AttackZooKillAndResumeMatchesUninterruptedRun) {
  const TinyWorld& world = SharedTinyWorld();
  const auto targets = TestTargets(world, 3);
  ASSERT_GE(targets.size(), 2U);
  CampaignConfig config = SmallCampaign();
  config.env.fault =
      fault::FaultScheduleConfig::Light(testhelpers::TestSeed(61));
  config.env.resilience.enabled = true;
  config.env.resilience.seed = testhelpers::TestSeed(67);

  ParallelRunnerOptions plain;
  plain.jobs = 1;
  plain.shards = 2;

  for (const std::string method : {"SurrogateTransfer", "Influence"}) {
    SCOPED_TRACE(method);
    const StrategyFactory factory = ZooFactory(world, method);
    const std::string dir = FreshDir("zoo_resume_" + method);
    const ParallelCampaignResult uninterrupted =
        RunShardedWith(world, factory, targets, config, plain);

    ParallelRunnerOptions crash = plain;
    crash.checkpoint.dir = dir;
    crash.checkpoint.abort_after_episodes = 3;
    const ParallelCampaignResult aborted =
        RunShardedWith(world, factory, targets, config, crash);
    EXPECT_TRUE(aborted.aggregate.aborted);

    ParallelRunnerOptions resume = plain;
    resume.checkpoint.dir = dir;
    resume.checkpoint.resume = true;
    const ParallelCampaignResult resumed =
        RunShardedWith(world, factory, targets, config, resume);
    EXPECT_FALSE(resumed.aggregate.aborted);
    ExpectResultsEqual(uninterrupted, resumed);
  }
}

TEST(ParallelRunner, ShardStatsCsvRoundTrips) {
  std::vector<ShardStats> shards(2);
  shards[0].shard = 0;
  shards[0].total_shards = 2;
  shards[0].num_items = 3;
  shards[0].stream_seed = 0xDEADBEEFCAFEF00DULL;
  shards[0].episodes_played = 12;
  shards[0].checkpoint_saves = 4;
  shards[0].resumed_from = CheckpointSource::kFallback;
  shards[0].wall_seconds = 1.25;
  shards[1].shard = 1;
  shards[1].total_shards = 2;
  shards[1].stream_seed = 42;

  std::ostringstream out;
  WriteShardStatsCsv(shards, out);
  std::istringstream in(out.str());
  std::vector<ShardStats> parsed;
  std::string error;
  ASSERT_TRUE(ParseShardStatsCsv(in, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].shard, 0u);
  EXPECT_EQ(parsed[0].total_shards, 2u);
  EXPECT_EQ(parsed[0].num_items, 3u);
  EXPECT_EQ(parsed[0].stream_seed, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(parsed[0].episodes_played, 12u);
  EXPECT_EQ(parsed[0].checkpoint_saves, 4u);
  EXPECT_EQ(parsed[0].resumed_from, CheckpointSource::kFallback);
  EXPECT_DOUBLE_EQ(parsed[0].wall_seconds, 1.25);
  EXPECT_EQ(parsed[1].stream_seed, 42u);

  std::istringstream bad("shard,x\n1,2\n");
  std::vector<ShardStats> rejected;
  EXPECT_FALSE(ParseShardStatsCsv(bad, &rejected, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(ParallelRunner, RejectsZeroJobs) {
  const TinyWorld& world = SharedTinyWorld();
  ParallelRunnerOptions options;
  options.jobs = 0;
  EXPECT_DEATH(
      {
        const ParallelCampaignRunner runner(
            world.world.dataset, world.split.train, world.ModelFactory(),
            CopyAttackFactory(world), options);
      },
      "jobs");
}

}  // namespace
}  // namespace copyattack::core
