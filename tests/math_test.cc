#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "test_seed.h"

#include "math/matrix.h"
#include "math/metrics.h"
#include "math/sampling.h"
#include "math/stats.h"
#include "math/top_k.h"
#include "math/vector_ops.h"
#include "util/rng.h"

namespace copyattack::math {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 3U);
  EXPECT_EQ(m.size(), 6U);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.at(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m(0, 1), 7.0f);
}

TEST(MatrixTest, FillAndZero) {
  Matrix m(2, 2);
  m.Fill(3.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 3.0f);
  m.Zero();
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
}

TEST(MatrixTest, AddScaledAndScale) {
  Matrix a(1, 3, 1.0f);
  Matrix b(1, 3, 2.0f);
  a.AddScaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a(0, 0), 2.0f);
  a.Scale(2.0f);
  EXPECT_FLOAT_EQ(a(0, 2), 4.0f);
}

TEST(MatrixTest, SquaredNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0f;
  m(0, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 25.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const Matrix c = Matrix::Multiply(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(MatrixTest, MultiplyTransposedBMatchesMultiply) {
  util::Rng rng(testhelpers::TestSeed(1));
  Matrix a(3, 4);
  a.FillNormal(rng, 0.0f, 1.0f);
  Matrix b(2, 4);
  b.FillNormal(rng, 0.0f, 1.0f);
  // Transpose b into bt and check A*bt == MultiplyTransposedB(a, b).
  Matrix bt(4, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 4; ++j) bt(j, i) = b(i, j);
  }
  const Matrix expected = Matrix::Multiply(a, bt);
  const Matrix got = Matrix::MultiplyTransposedB(a, b);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(got(i, j), expected(i, j), 1e-5f);
    }
  }
}

TEST(MatrixTest, CopyRowFrom) {
  Matrix src(2, 3, 0.0f);
  src(1, 0) = 1;
  src(1, 1) = 2;
  src(1, 2) = 3;
  Matrix dst(4, 3, 9.0f);
  dst.CopyRowFrom(src, 1, 2);
  EXPECT_FLOAT_EQ(dst(2, 1), 2.0f);
  EXPECT_FLOAT_EQ(dst(0, 0), 9.0f);
}

TEST(MatrixTest, AppendRowGrowsAmortized) {
  Matrix m(0, 3);
  EXPECT_EQ(m.rows(), 0U);
  for (std::size_t r = 0; r < 100; ++r) {
    float* row = m.AppendRow();
    EXPECT_FLOAT_EQ(row[0], 0.0f);  // new rows arrive zeroed
    for (std::size_t c = 0; c < 3; ++c) {
      row[c] = static_cast<float>(r * 3 + c);
    }
  }
  EXPECT_EQ(m.rows(), 100U);
  // Every previously written row survived the geometric reallocations.
  for (std::size_t r = 0; r < 100; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      ASSERT_FLOAT_EQ(m(r, c), static_cast<float>(r * 3 + c));
    }
  }
}

TEST(MatrixTest, ReserveAvoidsReallocation) {
  Matrix m(0, 4);
  m.Reserve(64);
  EXPECT_GE(m.row_capacity(), 64U);
  const float* base = m.AppendRow();
  for (std::size_t r = 1; r < 64; ++r) m.AppendRow();
  EXPECT_EQ(m.Row(0), base);  // no reallocation within the reservation
}

TEST(MatrixTest, EnsureRowsPreservesAndZeroFills) {
  Matrix m(2, 2, 5.0f);
  m.EnsureRows(4);
  EXPECT_EQ(m.rows(), 4U);
  EXPECT_FLOAT_EQ(m(1, 1), 5.0f);
  EXPECT_FLOAT_EQ(m(3, 0), 0.0f);
  m.EnsureRows(1);  // never shrinks
  EXPECT_EQ(m.rows(), 4U);
}

TEST(MatrixTest, TruncateRowsKeepsCapacityForRegrowth) {
  Matrix m(8, 2, 1.0f);
  m.TruncateRows(3);
  EXPECT_EQ(m.rows(), 3U);
  EXPECT_GE(m.row_capacity(), 8U);
  EXPECT_FLOAT_EQ(m(2, 1), 1.0f);
  // Regrowing reuses the allocation and yields zeroed rows again.
  m.EnsureRows(6);
  EXPECT_FLOAT_EQ(m(5, 0), 0.0f);
}

TEST(VectorOpsTest, KernelsMatchDoublePrecisionReference) {
  // The unrolled kernels must agree with a double-precision reference to
  // within float rounding, across lengths covering every unroll tail.
  util::Rng rng(testhelpers::TestSeed(314));
  for (const std::size_t n : {1U, 2U, 3U, 4U, 5U, 7U, 8U, 15U, 64U, 257U}) {
    std::vector<float> a(n), b(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
      b[i] = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
      y[i] = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
    }
    double dot_ref = 0.0, dist_ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dot_ref += static_cast<double>(a[i]) * b[i];
      const double d = static_cast<double>(a[i]) - b[i];
      dist_ref += d * d;
    }
    const double tolerance = 1e-4 * static_cast<double>(n);
    EXPECT_NEAR(Dot(a.data(), b.data(), n), dot_ref, tolerance) << "n=" << n;
    EXPECT_NEAR(SquaredDistance(a.data(), b.data(), n), dist_ref, tolerance)
        << "n=" << n;

    std::vector<double> axpy_ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      axpy_ref[i] = static_cast<double>(y[i]) + 0.75 * a[i];
    }
    Axpy(0.75f, a.data(), y.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(y[i], axpy_ref[i], 1e-5) << "n=" << n << " i=" << i;
    }
  }
}

TEST(VectorOpsTest, DotIsDeterministicAcrossCalls) {
  util::Rng rng(testhelpers::TestSeed(55));
  std::vector<float> a(123), b(123);
  for (auto& v : a) v = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  const float first = Dot(a.data(), b.data(), a.size());
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(first, Dot(a.data(), b.data(), a.size()));
  }
}

TEST(VectorOpsTest, DotAndAxpy) {
  const float a[] = {1, 2, 3};
  float b[] = {4, 5, 6};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 32.0f);
  Axpy(2.0f, a, b, 3);
  EXPECT_FLOAT_EQ(b[0], 6.0f);
  EXPECT_FLOAT_EQ(b[2], 12.0f);
}

TEST(VectorOpsTest, Distances) {
  const float a[] = {0, 0};
  const float b[] = {3, 4};
  EXPECT_FLOAT_EQ(SquaredDistance(a, b, 2), 25.0f);
  EXPECT_FLOAT_EQ(EuclideanDistance(a, b, 2), 5.0f);
}

TEST(VectorOpsTest, SoftmaxSumsToOneAndIsMonotone) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f};
  SoftmaxInPlace(v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0f, 1e-6f);
  EXPECT_LT(v[0], v[1]);
  EXPECT_LT(v[1], v[2]);
}

TEST(VectorOpsTest, SoftmaxNumericallyStable) {
  std::vector<float> v = {1000.0f, 1001.0f};
  SoftmaxInPlace(v);
  EXPECT_NEAR(v[0] + v[1], 1.0f, 1e-6f);
  EXPECT_GT(v[1], v[0]);
}

TEST(VectorOpsTest, MaskedSoftmaxZeroesMaskedEntries) {
  std::vector<float> v = {5.0f, 1.0f, 2.0f};
  MaskedSoftmaxInPlace(v, {false, true, true});
  EXPECT_FLOAT_EQ(v[0], 0.0f);
  EXPECT_NEAR(v[1] + v[2], 1.0f, 1e-6f);
  EXPECT_GT(v[2], v[1]);
}

TEST(VectorOpsTest, MaskedSoftmaxSingleUnmasked) {
  std::vector<float> v = {-10.0f, 3.0f};
  MaskedSoftmaxInPlace(v, {true, false});
  EXPECT_NEAR(v[0], 1.0f, 1e-6f);
  EXPECT_FLOAT_EQ(v[1], 0.0f);
}

TEST(VectorOpsTest, LogSumExpMatchesDirect) {
  std::vector<float> v = {0.1f, 0.2f, 0.3f};
  double direct = 0.0;
  for (const float x : v) direct += std::exp(x);
  EXPECT_NEAR(LogSumExp(v), std::log(direct), 1e-6);
}

TEST(VectorOpsTest, ArgMaxBreaksTiesLow) {
  EXPECT_EQ(ArgMax({1.0f, 3.0f, 3.0f}), 1U);
}

TEST(VectorOpsTest, NormalizeL2) {
  float v[] = {3.0f, 4.0f};
  NormalizeL2(v, 2);
  EXPECT_NEAR(v[0] * v[0] + v[1] * v[1], 1.0f, 1e-6f);
  float zero[] = {0.0f, 0.0f};
  NormalizeL2(zero, 2);  // must not produce NaN
  EXPECT_FLOAT_EQ(zero[0], 0.0f);
}

TEST(TopKTest, ReturnsBestFirst) {
  const std::vector<float> scores = {0.1f, 0.9f, 0.5f, 0.7f};
  const auto top = TopKIndices(scores, 2);
  ASSERT_EQ(top.size(), 2U);
  EXPECT_EQ(top[0], 1U);
  EXPECT_EQ(top[1], 3U);
}

TEST(TopKTest, KLargerThanInputReturnsFullSort) {
  const std::vector<float> scores = {0.3f, 0.1f, 0.2f};
  const auto top = TopKIndices(scores, 10);
  EXPECT_EQ(top, (std::vector<std::size_t>{0, 2, 1}));
}

TEST(TopKTest, TiesBreakTowardLowerIndex) {
  const std::vector<float> scores = {0.5f, 0.5f, 0.5f};
  const auto top = TopKIndices(scores, 3);
  EXPECT_EQ(top, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(TopKTest, RankOfConsistentWithArgSort) {
  util::Rng rng(testhelpers::TestSeed(17));
  std::vector<float> scores(50);
  for (auto& s : scores) s = static_cast<float>(rng.UniformDouble());
  const auto order = ArgSortDescending(scores);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    EXPECT_EQ(RankOf(scores, order[rank]), rank);
  }
}

TEST(TopKTest, HeapSelectMatchesSortedReference) {
  // The serving hot path replaced the partial-sort Top-k with a bounded
  // heap select; the two must agree exactly, including tie order, on
  // random score vectors with deliberate duplicates.
  util::Rng rng(testhelpers::TestSeed(29));
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 65));
    std::vector<float> scores(n);
    for (auto& s : scores) {
      // Quantize to force frequent ties.
      s = static_cast<float>(rng.UniformInt(0, 8)) * 0.125f;
    }
    for (const std::size_t k : {std::size_t{1}, n / 2, n, n + 5}) {
      if (k == 0) continue;
      SCOPED_TRACE("trial " + std::to_string(trial) + " n " +
                   std::to_string(n) + " k " + std::to_string(k));
      EXPECT_EQ(TopKIndices(scores, k), TopKIndicesBySort(scores, k));
    }
  }
}

TEST(TopKTest, PointerFormMatchesVectorForm) {
  util::Rng rng(testhelpers::TestSeed(31));
  std::vector<float> scores(40);
  for (auto& s : scores) s = static_cast<float>(rng.UniformDouble());
  EXPECT_EQ(TopKIndices(scores.data(), scores.size(), 7),
            TopKIndices(scores, 7));
}

TEST(TopKTest, PerRowMatchesRowWiseSelection) {
  util::Rng rng(testhelpers::TestSeed(37));
  const std::size_t rows = 6;
  const std::size_t cols = 23;
  const std::size_t k = 5;
  std::vector<float> block(rows * cols);
  for (auto& s : block) {
    s = static_cast<float>(rng.UniformInt(0, 16)) * 0.0625f;
  }
  std::vector<std::size_t> out(rows * k);
  TopKPerRow(block.data(), rows, cols, k, out.data());
  for (std::size_t r = 0; r < rows; ++r) {
    SCOPED_TRACE("row " + std::to_string(r));
    const std::vector<float> row(block.begin() + r * cols,
                                 block.begin() + (r + 1) * cols);
    const auto expected = TopKIndicesBySort(row, k);
    const std::vector<std::size_t> got(out.begin() + r * k,
                                       out.begin() + (r + 1) * k);
    EXPECT_EQ(got, expected);
  }
}

TEST(SamplingTest, AliasTableMatchesWeights) {
  const std::vector<double> weights = {1.0, 2.0, 7.0};
  AliasTable table(weights);
  util::Rng rng(testhelpers::TestSeed(23));
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(SamplingTest, AliasTableZeroWeightNeverSampled) {
  AliasTable table({0.0, 1.0, 0.0});
  util::Rng rng(testhelpers::TestSeed(5));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.Sample(rng), 1U);
  }
}

TEST(SamplingTest, AliasTableProbabilityOf) {
  AliasTable table({1.0, 3.0});
  EXPECT_NEAR(table.ProbabilityOf(0), 0.25, 1e-12);
  EXPECT_NEAR(table.ProbabilityOf(1), 0.75, 1e-12);
}

TEST(SamplingTest, ZipfWeightsDecreasing) {
  const auto w = ZipfWeights(10, 1.0);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_LT(w[i], w[i - 1]);
  }
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_NEAR(w[1], 0.5, 1e-12);
}

TEST(SamplingTest, SampleCategoricalRespectsZeros) {
  util::Rng rng(testhelpers::TestSeed(3));
  for (int i = 0; i < 200; ++i) {
    const std::size_t s = SampleCategorical({0.0f, 0.5f, 0.0f, 0.5f}, rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(StatsTest, RunningStatsMeanVariance) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
}

TEST(StatsTest, RunningStatsMergeEqualsSequential) {
  util::Rng rng(testhelpers::TestSeed(31));
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = rng.Normal();
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
}

TEST(StatsTest, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({5.0}, 0.9), 5.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(StatsTest, HistogramCountsSum) {
  const auto h = Histogram({0.0, 0.1, 0.5, 0.9, 1.0}, 2);
  EXPECT_EQ(std::accumulate(h.begin(), h.end(), 0UL), 5UL);
  EXPECT_EQ(h[0], 2U);  // 0.0 and 0.1; 0.5 lands exactly on the boundary
  EXPECT_EQ(h[1], 3U);  // 0.5, 0.9, 1.0
}

TEST(MetricsTest, HitRatioAtK) {
  EXPECT_DOUBLE_EQ(HitRatioAtK(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(HitRatioAtK(4, 5), 1.0);
  EXPECT_DOUBLE_EQ(HitRatioAtK(5, 5), 0.0);
}

TEST(MetricsTest, NdcgAtK) {
  EXPECT_DOUBLE_EQ(NdcgAtK(0, 10), 1.0);
  EXPECT_NEAR(NdcgAtK(1, 10), 1.0 / std::log2(3.0), 1e-12);
  EXPECT_DOUBLE_EQ(NdcgAtK(10, 10), 0.0);
  // NDCG decreases with rank.
  EXPECT_GT(NdcgAtK(1, 20), NdcgAtK(2, 20));
}

/// Property sweep: masked softmax equals plain softmax restricted to the
/// unmasked coordinates, for several vector sizes.
class MaskedSoftmaxProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaskedSoftmaxProperty, MatchesRestrictedSoftmax) {
  const int n = GetParam();
  util::Rng rng(testhelpers::TestSeed(100 + n));
  std::vector<float> values(n);
  std::vector<bool> mask(n);
  bool any = false;
  for (int i = 0; i < n; ++i) {
    values[i] = static_cast<float>(rng.Normal());
    mask[i] = rng.Bernoulli(0.6);
    any = any || mask[i];
  }
  if (!any) mask[0] = true;

  std::vector<float> restricted;
  for (int i = 0; i < n; ++i) {
    if (mask[i]) restricted.push_back(values[i]);
  }
  SoftmaxInPlace(restricted);

  MaskedSoftmaxInPlace(values, mask);
  std::size_t j = 0;
  for (int i = 0; i < n; ++i) {
    if (mask[i]) {
      EXPECT_NEAR(values[i], restricted[j++], 1e-5f);
    } else {
      EXPECT_FLOAT_EQ(values[i], 0.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MaskedSoftmaxProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 64));

}  // namespace
}  // namespace copyattack::math

namespace copyattack::math {
namespace {

/// Property sweep: the alias table reproduces arbitrary weight vectors'
/// normalized probabilities (reconstruction check, no sampling noise).
class AliasTableProperty : public ::testing::TestWithParam<int> {};

TEST_P(AliasTableProperty, NormalizedProbabilitiesPreserved) {
  util::Rng rng(testhelpers::TestSeed(700 + GetParam()));
  const std::size_t n = 1 + rng.UniformUint64(40);
  std::vector<double> weights(n);
  double total = 0.0;
  for (auto& w : weights) {
    w = rng.Bernoulli(0.2) ? 0.0 : rng.UniformDouble(0.01, 5.0);
    total += w;
  }
  if (total == 0.0) {
    weights[0] = 1.0;
    total = 1.0;
  }
  AliasTable table(weights);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(table.ProbabilityOf(i), weights[i] / total, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AliasTableProperty,
                         ::testing::Range(0, 10));

/// Property: matrix multiplication is associative on random inputs
/// (within float tolerance) — a structural check of the kernel.
TEST(MatrixProperty, MultiplicationAssociative) {
  util::Rng rng(testhelpers::TestSeed(41));
  Matrix a(3, 4), b(4, 5), c(5, 2);
  a.FillNormal(rng, 0.0f, 1.0f);
  b.FillNormal(rng, 0.0f, 1.0f);
  c.FillNormal(rng, 0.0f, 1.0f);
  const Matrix left = Matrix::Multiply(Matrix::Multiply(a, b), c);
  const Matrix right = Matrix::Multiply(a, Matrix::Multiply(b, c));
  for (std::size_t i = 0; i < left.rows(); ++i) {
    for (std::size_t j = 0; j < left.cols(); ++j) {
      EXPECT_NEAR(left(i, j), right(i, j), 1e-4f);
    }
  }
}

/// Property: Merge is associative and order-insensitive for RunningStats.
TEST(StatsProperty, MergeOrderInsensitive) {
  util::Rng rng(testhelpers::TestSeed(43));
  std::vector<double> values(60);
  for (auto& v : values) v = rng.Normal(2.0, 3.0);

  RunningStats abc, acb;
  RunningStats a, b, c;
  for (int i = 0; i < 20; ++i) a.Add(values[i]);
  for (int i = 20; i < 40; ++i) b.Add(values[i]);
  for (int i = 40; i < 60; ++i) c.Add(values[i]);

  abc = a;
  abc.Merge(b);
  abc.Merge(c);
  acb = a;
  acb.Merge(c);
  acb.Merge(b);
  EXPECT_NEAR(abc.Mean(), acb.Mean(), 1e-9);
  EXPECT_NEAR(abc.Variance(), acb.Variance(), 1e-9);
  EXPECT_EQ(abc.count(), 60U);
}

/// Property: TopKIndices(k) is always a prefix of the full argsort.
class TopKPrefixProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopKPrefixProperty, PrefixOfArgsort) {
  util::Rng rng(testhelpers::TestSeed(900 + GetParam()));
  std::vector<float> scores(1 + rng.UniformUint64(60));
  for (auto& s : scores) s = static_cast<float>(rng.Normal());
  const auto full = ArgSortDescending(scores);
  const std::size_t k = 1 + rng.UniformUint64(scores.size());
  const auto top = TopKIndices(scores, k);
  ASSERT_EQ(top.size(), std::min(k, scores.size()));
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i], full[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKPrefixProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace copyattack::math
