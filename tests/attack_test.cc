// Unit tests for the attack-zoo subsystem (ISSUE 8): the local surrogate
// model, the gradient-crafted SurrogateTransferAttack, and the analytic
// InfluenceAttack — including the SaveState/LoadState checkpoint contract
// the campaign runner's kill-and-resume path depends on.

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "attack/influence.h"
#include "attack/surrogate.h"
#include "attack/surrogate_transfer.h"
#include "core/environment.h"
#include "rec/pinsage_lite.h"
#include "test_helpers.h"
#include "test_seed.h"

namespace copyattack::attack {
namespace {

using testhelpers::SharedTinyWorld;
using testhelpers::TinyWorld;

core::EnvConfig SmallEnvConfig() {
  core::EnvConfig config;
  config.budget = 9;
  config.query_interval = 3;
  config.num_pretend_users = 10;
  config.reward_k = 20;
  config.query_candidates = 50;
  config.seed = 7;
  return config;
}

std::shared_ptr<const TargetSurrogate> SharedSurrogate() {
  static const auto surrogate = std::make_shared<const TargetSurrogate>(
      SharedTinyWorld().world.dataset.target, SurrogateConfig{});
  return surrogate;
}

/// The injected profiles of the current environment state: polluted rows
/// past the training users and the attacker's pretend accounts.
std::vector<data::Profile> HarvestInjected(const TinyWorld& tw,
                                           const core::AttackEnvironment& env) {
  const data::Dataset& polluted = env.black_box().polluted();
  const std::size_t base =
      tw.split.train.num_users() + env.pretend_users().size();
  std::vector<data::Profile> injected;
  for (data::UserId u = static_cast<data::UserId>(base);
       u < polluted.num_users(); ++u) {
    injected.push_back(polluted.UserProfile(u));
  }
  return injected;
}

TEST(TargetSurrogateTest, RetrainingIsDeterministic) {
  const auto& tw = SharedTinyWorld();
  const TargetSurrogate a(tw.world.dataset.target, SurrogateConfig{});
  const TargetSurrogate b(tw.world.dataset.target, SurrogateConfig{});
  ASSERT_EQ(a.num_items(), tw.world.dataset.target.num_items());
  ASSERT_EQ(a.mean_user_embedding().size(), a.embedding_dim());
  // Fixed training seed: two independently trained surrogates are
  // bit-identical, the property shard- and resume-invariance rest on.
  EXPECT_EQ(a.mean_user_embedding(), b.mean_user_embedding());
  const data::Profile probe = tw.world.dataset.target.UserProfile(0);
  EXPECT_EQ(a.FoldInProfile(probe), b.FoldInProfile(probe));
}

TEST(TargetSurrogateTest, FoldInAveragesItemEmbeddings) {
  const auto surrogate = SharedSurrogate();
  const data::ItemId item = 0;
  const auto folded = surrogate->FoldInProfile({item});
  ASSERT_EQ(folded.size(), surrogate->embedding_dim());
  const float* row = surrogate->item_embeddings().Row(item);
  for (std::size_t d = 0; d < folded.size(); ++d) {
    EXPECT_FLOAT_EQ(folded[d], row[d]);
  }
  // An empty profile folds to the origin, scoring 0 for every item.
  const auto empty = surrogate->FoldInProfile({});
  for (const float v : empty) EXPECT_EQ(v, 0.0f);
}

TEST(SurrogateTransferTest, EpisodeInjectsCraftedProfilesWithTarget) {
  const auto& tw = SharedTinyWorld();
  SurrogateTransferAttack strategy(&tw.world.dataset, SharedSurrogate(),
                                   SurrogateTransferConfig{},
                                   testhelpers::TestSeed(1));
  strategy.BeginTargetItem(tw.cold_target);

  rec::PinSageLite model = tw.model;
  core::AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                              SmallEnvConfig());
  env.Reset(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  strategy.RunEpisode(env, rng);
  EXPECT_TRUE(env.done());

  const auto injected = HarvestInjected(tw, env);
  ASSERT_EQ(injected.size(), SmallEnvConfig().budget);
  const SurrogateTransferConfig config;
  for (const data::Profile& profile : injected) {
    EXPECT_EQ(profile.size(), config.profile_length);
    EXPECT_NE(std::find(profile.begin(), profile.end(), tw.cold_target),
              profile.end());
    const std::set<data::ItemId> unique(profile.begin(), profile.end());
    EXPECT_EQ(unique.size(), profile.size());
  }
}

TEST(SurrogateTransferTest, StepScaleDecaysOnlyWhileLearning) {
  const auto& tw = SharedTinyWorld();
  SurrogateTransferAttack strategy(&tw.world.dataset, SharedSurrogate(),
                                   SurrogateTransferConfig{},
                                   testhelpers::TestSeed(5));
  strategy.BeginTargetItem(tw.cold_target);
  EXPECT_EQ(strategy.step_scale(), 1.0);

  rec::PinSageLite model = tw.model;
  core::AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                              SmallEnvConfig());
  util::Rng rng(testhelpers::TestSeed(3));
  for (int e = 0; e < 4; ++e) {
    env.Reset(tw.cold_target);
    strategy.RunEpisode(env, rng);
  }
  const double after_learning = strategy.step_scale();
  EXPECT_GE(after_learning, SurrogateTransferConfig{}.min_step_scale);
  EXPECT_LE(after_learning, 1.0);

  // Eval mode freezes the learned state entirely.
  strategy.SetEvalMode(true);
  env.Reset(tw.cold_target);
  strategy.RunEpisode(env, rng);
  EXPECT_EQ(strategy.step_scale(), after_learning);
}

TEST(SurrogateTransferTest, CheckpointRoundTripResumesExactTrajectory) {
  const auto& tw = SharedTinyWorld();
  SurrogateTransferAttack original(&tw.world.dataset, SharedSurrogate(),
                                   SurrogateTransferConfig{},
                                   testhelpers::TestSeed(1));
  original.BeginTargetItem(tw.cold_target);
  {
    rec::PinSageLite model = tw.model;
    core::AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                                SmallEnvConfig());
    util::Rng rng(testhelpers::TestSeed(3));
    for (int e = 0; e < 2; ++e) {
      env.Reset(tw.cold_target);
      original.RunEpisode(env, rng);
    }
  }

  std::stringstream blob;
  ASSERT_TRUE(original.SaveState(blob));

  // A fresh strategy with a DIFFERENT seed must continue the exact
  // trajectory after LoadState: the ascent rng, step scale and best seed
  // user are all part of the checkpoint.
  SurrogateTransferAttack restored(&tw.world.dataset, SharedSurrogate(),
                                   SurrogateTransferConfig{},
                                   testhelpers::TestSeed(999));
  restored.BeginTargetItem(tw.cold_target);
  ASSERT_TRUE(restored.LoadState(blob));
  EXPECT_EQ(restored.step_scale(), original.step_scale());

  rec::PinSageLite model_a = tw.model;
  rec::PinSageLite model_b = tw.model;
  core::AttackEnvironment env_a(tw.world.dataset, tw.split.train, &model_a,
                                SmallEnvConfig());
  core::AttackEnvironment env_b(tw.world.dataset, tw.split.train, &model_b,
                                SmallEnvConfig());
  util::Rng rng_a(testhelpers::TestSeed(55));
  util::Rng rng_b(testhelpers::TestSeed(55));
  for (int e = 0; e < 2; ++e) {
    env_a.Reset(tw.cold_target);
    env_b.Reset(tw.cold_target);
    const double ra = original.RunEpisode(env_a, rng_a);
    const double rb = restored.RunEpisode(env_b, rng_b);
    EXPECT_DOUBLE_EQ(ra, rb);
  }
  EXPECT_EQ(original.step_scale(), restored.step_scale());
}

TEST(InfluenceTest, RankingIsDeterministicOverSourceHolders) {
  const auto& tw = SharedTinyWorld();
  InfluenceAttack a(&tw.world.dataset, SharedSurrogate(), InfluenceConfig{},
                    testhelpers::TestSeed(1));
  InfluenceAttack b(&tw.world.dataset, SharedSurrogate(), InfluenceConfig{},
                    testhelpers::TestSeed(2));
  a.BeginTargetItem(tw.cold_target);
  b.BeginTargetItem(tw.cold_target);
  ASSERT_FALSE(a.ranked_candidates().empty());
  // The analytic pick is seed-independent.
  EXPECT_EQ(a.ranked_candidates(), b.ranked_candidates());

  const auto& holders = tw.world.dataset.SourceHolders(tw.cold_target);
  const std::set<data::UserId> holder_set(holders.begin(), holders.end());
  for (const data::UserId u : a.ranked_candidates()) {
    EXPECT_TRUE(holder_set.count(u)) << "candidate " << u
                                     << " is not a source holder";
  }
}

TEST(InfluenceTest, EpisodeInjectsClippedHolderProfiles) {
  const auto& tw = SharedTinyWorld();
  InfluenceAttack strategy(&tw.world.dataset, SharedSurrogate(),
                           InfluenceConfig{}, testhelpers::TestSeed(1));
  strategy.BeginTargetItem(tw.cold_target);

  rec::PinSageLite model = tw.model;
  core::AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                              SmallEnvConfig());
  env.Reset(tw.cold_target);
  util::Rng rng(testhelpers::TestSeed(3));
  strategy.RunEpisode(env, rng);
  EXPECT_TRUE(env.done());

  const auto injected = HarvestInjected(tw, env);
  ASSERT_EQ(injected.size(), SmallEnvConfig().budget);
  for (const data::Profile& profile : injected) {
    EXPECT_NE(std::find(profile.begin(), profile.end(), tw.cold_target),
              profile.end());
  }
}

TEST(InfluenceTest, CheckpointRoundTripPreservesCursor) {
  const auto& tw = SharedTinyWorld();
  InfluenceAttack original(&tw.world.dataset, SharedSurrogate(),
                           InfluenceConfig{}, testhelpers::TestSeed(1));
  original.BeginTargetItem(tw.cold_target);
  {
    rec::PinSageLite model = tw.model;
    core::AttackEnvironment env(tw.world.dataset, tw.split.train, &model,
                                SmallEnvConfig());
    util::Rng rng(testhelpers::TestSeed(3));
    for (int e = 0; e < 3; ++e) {
      env.Reset(tw.cold_target);
      original.RunEpisode(env, rng);
    }
  }

  std::stringstream blob;
  ASSERT_TRUE(original.SaveState(blob));

  InfluenceAttack restored(&tw.world.dataset, SharedSurrogate(),
                           InfluenceConfig{}, testhelpers::TestSeed(999));
  restored.BeginTargetItem(tw.cold_target);
  ASSERT_TRUE(restored.LoadState(blob));
  EXPECT_EQ(restored.cursor(), original.cursor());

  rec::PinSageLite model_a = tw.model;
  rec::PinSageLite model_b = tw.model;
  core::AttackEnvironment env_a(tw.world.dataset, tw.split.train, &model_a,
                                SmallEnvConfig());
  core::AttackEnvironment env_b(tw.world.dataset, tw.split.train, &model_b,
                                SmallEnvConfig());
  util::Rng rng_a(testhelpers::TestSeed(55));
  util::Rng rng_b(testhelpers::TestSeed(55));
  env_a.Reset(tw.cold_target);
  env_b.Reset(tw.cold_target);
  EXPECT_DOUBLE_EQ(original.RunEpisode(env_a, rng_a),
                   restored.RunEpisode(env_b, rng_b));
  EXPECT_EQ(original.cursor(), restored.cursor());
}

TEST(InfluenceTest, LoadStateRejectsTruncatedBlob) {
  const auto& tw = SharedTinyWorld();
  InfluenceAttack strategy(&tw.world.dataset, SharedSurrogate(),
                           InfluenceConfig{}, testhelpers::TestSeed(1));
  strategy.BeginTargetItem(tw.cold_target);
  std::stringstream truncated("abc");
  EXPECT_FALSE(strategy.LoadState(truncated));
}

}  // namespace
}  // namespace copyattack::attack
