#ifndef COPYATTACK_TESTS_TEST_HELPERS_H_
#define COPYATTACK_TESTS_TEST_HELPERS_H_

#include <memory>

#include "core/runner.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/target_items.h"
#include "rec/pinsage_lite.h"
#include "test_seed.h"
#include "util/rng.h"

namespace copyattack::testhelpers {

/// A tiny end-to-end world shared by the core tests: synthetic cross-domain
/// data, a train split, a fitted PinSage-style target model, and the
/// source-domain artifacts (MF embeddings + clustering tree).
struct TinyWorld {
  data::SyntheticWorld world;
  data::TrainValidTestSplit split;
  rec::PinSageLite model;  // fitted prototype; copy per campaign
  core::SourceArtifacts artifacts;
  data::ItemId cold_target = data::kNoItem;

  TinyWorld()
      : world(data::GenerateSyntheticWorld(data::SyntheticConfig::Tiny())),
        split(MakeSplit(world)),
        model(MakeModel(split)),
        artifacts(MakeArtifacts(world)) {
    util::Rng rng(TestSeed(17));
    const auto targets =
        data::SampleColdTargetItems(world.dataset, 1, 10, rng);
    if (!targets.empty()) cold_target = targets[0];
  }

  static data::TrainValidTestSplit MakeSplit(
      const data::SyntheticWorld& world) {
    util::Rng rng(TestSeed(23));
    return data::SplitDataset(world.dataset.target, rng);
  }

  static rec::PinSageLite MakeModel(
      const data::TrainValidTestSplit& split) {
    rec::PinSageLite model;
    util::Rng rng(TestSeed(29));
    model.Fit(split.train, 12, rng);
    return model;
  }

  static core::SourceArtifacts MakeArtifacts(
      const data::SyntheticWorld& world) {
    core::SourceArtifactOptions options;
    options.mf_epochs = 8;
    options.tree_depth = 3;
    return core::PrepareSourceArtifacts(world.dataset, options);
  }

  /// Model factory for campaign runners (fresh serving state per clone).
  core::ModelFactory ModelFactory() const {
    return [this] { return std::make_unique<rec::PinSageLite>(model); };
  }
};

/// Returns the process-wide shared TinyWorld (built once; read-only).
inline const TinyWorld& SharedTinyWorld() {
  static const TinyWorld* const world = new TinyWorld();
  return *world;
}

}  // namespace copyattack::testhelpers

#endif  // COPYATTACK_TESTS_TEST_HELPERS_H_
