#include "bench_common.h"
#include <cstdio>
#include <cstdlib>

#include <sys/stat.h>

#include "data/target_items.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace copyattack::bench {

BenchWorld BuildBenchWorld(const data::SyntheticConfig& config,
                           std::size_t tree_depth) {
  CA_LOG(Info) << "generating world: " << config.name;
  data::SyntheticWorld world = data::GenerateSyntheticWorld(config);

  util::Rng split_rng(config.seed ^ 0x51517ULL);
  data::TrainValidTestSplit split =
      data::SplitDataset(world.dataset.target, split_rng);

  rec::PinSageLite model;
  rec::TrainOptions train_options;
  train_options.max_epochs = 40;
  train_options.patience = 5;
  util::Rng train_rng(config.seed ^ 0x7EA7ULL);
  rec::TrainReport report = rec::TrainWithEarlyStopping(
      model, split, world.dataset.target, train_options, train_rng);
  CA_LOG(Info) << "target model trained: " << report.epochs_run
               << " epochs, test HR@10 = " << report.test_hr;

  core::SourceArtifactOptions artifact_options;
  artifact_options.tree_depth = tree_depth;
  artifact_options.seed = config.seed ^ 0xA11CEULL;
  core::SourceArtifacts artifacts =
      core::PrepareSourceArtifacts(world.dataset, artifact_options);

  return BenchWorld(std::move(world), std::move(split), std::move(model),
                    report, std::move(artifacts));
}

const std::vector<std::string>& Table2Methods() {
  static const std::vector<std::string>* const methods =
      new std::vector<std::string>{
          "RandomAttack",       "TargetAttack40",  "TargetAttack70",
          "TargetAttack100",    "PolicyNetwork",   "CopyAttack-Masking",
          "CopyAttack-Length",  "CopyAttack"};
  return *methods;
}

std::unique_ptr<core::AttackStrategy> MakeStrategy(const std::string& name,
                                                   const BenchWorld& bw,
                                                   std::uint64_t seed) {
  const auto* dataset = &bw.world.dataset;
  const auto* tree = &bw.artifacts.tree;
  const auto* user_emb = &bw.artifacts.mf.user_embeddings();
  const auto* item_emb = &bw.artifacts.mf.item_embeddings();

  if (name == "RandomAttack") {
    return std::make_unique<core::RandomAttack>(*dataset);
  }
  if (name == "TargetAttack40") {
    return std::make_unique<core::TargetAttack>(*dataset, 0.4);
  }
  if (name == "TargetAttack70") {
    return std::make_unique<core::TargetAttack>(*dataset, 0.7);
  }
  if (name == "TargetAttack100") {
    return std::make_unique<core::TargetAttack>(*dataset, 1.0);
  }
  if (name == "PolicyNetwork") {
    return std::make_unique<core::FlatPolicyNetwork>(
        dataset, user_emb, item_emb, core::FlatPolicyNetwork::Config{},
        seed);
  }
  core::CopyAttackConfig config;
  if (name == "CopyAttack-Masking") {
    config.use_masking = false;
  } else if (name == "CopyAttack-Length") {
    config.use_crafting = false;
  } else {
    CA_CHECK_EQ(name, std::string("CopyAttack")) << "unknown method";
  }
  return std::make_unique<core::CopyAttack>(dataset, tree, user_emb,
                                            item_emb, config, seed);
}

std::size_t EpisodesForMethod(const std::string& name,
                              std::size_t learning_episodes) {
  if (name == "RandomAttack" || util::StartsWith(name, "TargetAttack")) {
    return 1;  // non-learning baselines
  }
  return learning_episodes;
}

core::CampaignConfig DefaultCampaign(std::uint64_t seed) {
  core::CampaignConfig config;
  config.env.budget = 30;
  config.env.query_interval = 3;
  config.env.num_pretend_users = 50;
  config.env.reward_k = 20;
  config.env.query_candidates = 100;
  config.episodes = 25;
  config.eval_ks = {20, 10, 5};
  config.eval_users = 250;
  config.eval_negatives = 100;
  config.seed = seed;
  config.num_threads = 1;
  return config;
}

std::string ResultPath(const std::string& name) {
  ::mkdir("bench_results", 0755);  // ignore EEXIST
  return "bench_results/" + name;
}

std::string F4(double value) { return util::FormatDouble(value, 4); }

TelemetryScope::TelemetryScope(int argc, const char* const* argv) {
  const std::string flag_prefix = "--telemetry_out=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (util::StartsWith(arg, flag_prefix)) {
      dir_ = arg.substr(flag_prefix.size());
    }
  }
  if (dir_.empty()) {
    const char* env = std::getenv("COPYATTACK_TELEMETRY_OUT");
    if (env != nullptr) dir_ = env;
  }
  if (!dir_.empty()) obs::SetEnabled(true);
}

TelemetryScope::~TelemetryScope() {
  if (dir_.empty()) return;
  obs::SetEnabled(false);
  if (obs::ExportAll(dir_)) {
    CA_LOG(Info) << "telemetry written to " << dir_;
  } else {
    CA_LOG(Warning) << "could not write telemetry to " << dir_;
  }
}

void RunBudgetSweep(const data::SyntheticConfig& config,
                    std::size_t tree_depth,
                    const std::vector<std::size_t>& budgets,
                    const std::vector<std::string>& methods,
                    std::size_t num_targets, const std::string& csv_name) {
  const BenchWorld bw = BuildBenchWorld(config, tree_depth);
  util::Rng target_rng(1789);
  const std::vector<data::ItemId> targets = data::SampleColdTargetItems(
      bw.world.dataset, num_targets, 10, target_rng);

  util::CsvWriter csv(ResultPath(csv_name),
                      {"dataset", "method", "budget", "hr20", "ndcg20"});

  std::printf("\n--- %s (%zu target items) ---\n", config.name.c_str(),
              targets.size());
  std::printf("%-20s", "budget");
  for (const std::size_t budget : budgets) std::printf("%8zu", budget);
  std::printf("\n");

  for (const std::string& method : methods) {
    std::vector<double> hr_series, ndcg_series;
    for (const std::size_t budget : budgets) {
      core::CampaignConfig campaign = DefaultCampaign(4242);
      campaign.env.budget = budget;
      campaign.episodes = EpisodesForMethod(method, campaign.episodes);
      const auto result = core::RunCampaign(
          bw.world.dataset, bw.split.train, bw.ModelFactory(),
          [&](std::uint64_t seed) { return MakeStrategy(method, bw, seed); },
          targets, campaign);
      hr_series.push_back(result.metrics.at(20).hr);
      ndcg_series.push_back(result.metrics.at(20).ndcg);
      csv.WriteRow({config.name, method, std::to_string(budget),
                    F4(result.metrics.at(20).hr),
                    F4(result.metrics.at(20).ndcg)});
    }
    std::printf("%-20s", (method + " HR@20").c_str());
    for (const double v : hr_series) std::printf("%8.4f", v);
    std::printf("\n%-20s", (method + " NDCG").c_str());
    for (const double v : ndcg_series) std::printf("%8.4f", v);
    std::printf("\n");
  }
  csv.Flush();
}

}  // namespace copyattack::bench
