// Reproduces Figure 3: effect of the hierarchical clustering tree depth d
// on CopyAttack's HR@20 and NDCG@20, for both dataset pairs. The paper
// finds d=3 best on the small pair and d=6 best on the large pair: too
// shallow means huge per-node action spaces, too deep means many more
// policy networks to train with the same query budget.

#include <cstdio>
#include <vector>

#include "data/target_items.h"
#include "obs/time.h"
#include "util/csv.h"

#include "bench_common.h"

namespace {

void RunDataset(const copyattack::data::SyntheticConfig& config,
                const std::vector<std::size_t>& depths,
                std::size_t num_targets, copyattack::util::CsvWriter& csv) {
  using namespace copyattack;

  std::printf("\n--- %s ---\n", config.name.c_str());
  std::printf("depth  branching  HR@20   NDCG@20  wall(s)\n");
  for (const std::size_t depth : depths) {
    // The tree (and hence the policy architecture) depends on the depth,
    // so the artifacts are rebuilt per sweep point.
    const bench::BenchWorld bw = bench::BuildBenchWorld(config, depth);
    util::Rng target_rng(1789);
    const auto targets = data::SampleColdTargetItems(
        bw.world.dataset, num_targets, 10, target_rng);

    const core::CampaignConfig campaign = bench::DefaultCampaign(4242);
    const auto result = core::RunCampaign(
        bw.world.dataset, bw.split.train, bw.ModelFactory(),
        [&](std::uint64_t seed) {
          return bench::MakeStrategy("CopyAttack", bw, seed);
        },
        targets, campaign);

    std::printf("%-5zu  %-9zu  %s  %s   %.1f\n", depth,
                bw.artifacts.tree.branching(),
                bench::F4(result.metrics.at(20).hr).c_str(),
                bench::F4(result.metrics.at(20).ndcg).c_str(),
                result.wall_seconds);
    csv.WriteRow({config.name, std::to_string(depth),
                  std::to_string(bw.artifacts.tree.branching()),
                  bench::F4(result.metrics.at(20).hr),
                  bench::F4(result.metrics.at(20).ndcg),
                  bench::F4(result.wall_seconds)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace copyattack;
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;
  std::printf("=== Figure 3: Effect of depth of the hierarchical "
              "clustering tree ===\n");

  util::CsvWriter csv(bench::ResultPath("fig3_tree_depth.csv"),
                      {"dataset", "depth", "branching", "hr20", "ndcg20",
                       "wall_s"});

  RunDataset(data::SyntheticConfig::SmallCross(), {2, 3, 4, 5}, 30, csv);
  RunDataset(data::SyntheticConfig::LargeCross(), {2, 3, 4, 6}, 30, csv);

  csv.Flush();
  std::printf("\n[fig3] done in %.1fs; CSV: "
              "bench_results/fig3_tree_depth.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
