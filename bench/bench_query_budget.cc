// Extension experiment: attack strength under a *query* budget. The paper
// motivates the hierarchical design with "limited resources (i.e., number
// of queries (or interactions) allowed to the target recommender system)"
// but only sweeps the profile budget. This bench fixes the profile budget
// at 30 and instead caps the number of query rounds the attacker may
// spend per episode — measuring how much feedback CopyAttack's learning
// actually needs.

#include <cstdio>

#include "data/target_items.h"
#include "obs/time.h"
#include "util/csv.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace copyattack;
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;
  std::printf("=== Query budget: CopyAttack under capped query rounds ===\n");

  const bench::BenchWorld bw =
      bench::BuildBenchWorld(data::SyntheticConfig::SmallCross(), 3);
  util::Rng target_rng(1789);
  const auto targets =
      data::SampleColdTargetItems(bw.world.dataset, 25, 10, target_rng);

  util::CsvWriter csv(bench::ResultPath("query_budget.csv"),
                      {"max_query_rounds", "hr20", "ndcg20",
                       "profiles_injected"});

  std::printf("\nmax query rounds/episode  HR@20   NDCG@20  profiles\n");
  for (const std::size_t rounds : {1UL, 2UL, 4UL, 6UL, 10UL, 0UL}) {
    core::CampaignConfig campaign = bench::DefaultCampaign(4242);
    campaign.env.max_query_rounds = rounds;  // 0 = unlimited
    const auto result = core::RunCampaign(
        bw.world.dataset, bw.split.train, bw.ModelFactory(),
        [&](std::uint64_t seed) {
          return bench::MakeStrategy("CopyAttack", bw, seed);
        },
        targets, campaign);
    if (rounds == 0) {
      std::printf("unlimited                 ");
    } else {
      std::printf("%-25zu ", rounds);
    }
    std::printf("%s  %s   %.1f\n",
                bench::F4(result.metrics.at(20).hr).c_str(),
                bench::F4(result.metrics.at(20).ndcg).c_str(),
                result.avg_profiles_injected);
    csv.WriteRow({std::to_string(rounds),
                  bench::F4(result.metrics.at(20).hr),
                  bench::F4(result.metrics.at(20).ndcg),
                  bench::F4(result.avg_profiles_injected)});
  }
  csv.Flush();
  std::printf("\n[query_budget] done in %.1fs; CSV: "
              "bench_results/query_budget.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
