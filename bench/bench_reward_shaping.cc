// Agent ablations: reward construction and state encoder.
//
// The paper's Eq. (1) uses the raw HR@k over the pretend users at each
// query round as the reward; this repo's default instead credits each
// 3-injection window with its *marginal lift* (delta shaping) — the same
// optimum, but much better credit assignment under an episode-level
// baseline. The third row swaps the paper's vanilla RNN state encoder for
// a GRU.

#include <cstdio>

#include "data/target_items.h"
#include "obs/time.h"
#include "util/csv.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace copyattack;
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;
  std::printf("=== Agent ablations: reward shaping and state encoder ===\n");

  const bench::BenchWorld bw =
      bench::BuildBenchWorld(data::SyntheticConfig::SmallCross(), 3);
  util::Rng target_rng(1789);
  const auto targets =
      data::SampleColdTargetItems(bw.world.dataset, 30, 10, target_rng);

  util::CsvWriter csv(bench::ResultPath("reward_shaping.csv"),
                      {"shaping", "hr20", "hr10", "hr5", "ndcg20",
                       "final_reward"});

  std::printf("\n%-13s HR@20   HR@10   HR@5    NDCG@20 final-reward\n",
              "variant");
  const struct {
    const char* name;
    core::RewardShaping shaping;
    core::SequenceEncoderType encoder;
  } variants[] = {{"raw-HR", core::RewardShaping::kHitRatio,
                   core::SequenceEncoderType::kVanillaRnn},
                  {"delta-HR", core::RewardShaping::kDeltaHitRatio,
                   core::SequenceEncoderType::kVanillaRnn},
                  {"delta-HR+GRU", core::RewardShaping::kDeltaHitRatio,
                   core::SequenceEncoderType::kGru}};

  for (const auto& variant : variants) {
    const core::CampaignConfig campaign = bench::DefaultCampaign(4242);
    const auto result = core::RunCampaign(
        bw.world.dataset, bw.split.train, bw.ModelFactory(),
        [&](std::uint64_t seed) {
          core::CopyAttackConfig config;
          config.reward_shaping = variant.shaping;
          config.selection.encoder = variant.encoder;
          return std::make_unique<core::CopyAttack>(
              &bw.world.dataset, &bw.artifacts.tree,
              &bw.artifacts.mf.user_embeddings(),
              &bw.artifacts.mf.item_embeddings(), config, seed);
        },
        targets, campaign);
    std::printf("%-13s %s  %s  %s  %s  %s\n", variant.name,
                bench::F4(result.metrics.at(20).hr).c_str(),
                bench::F4(result.metrics.at(10).hr).c_str(),
                bench::F4(result.metrics.at(5).hr).c_str(),
                bench::F4(result.metrics.at(20).ndcg).c_str(),
                bench::F4(result.avg_final_reward).c_str());
    csv.WriteRow({variant.name, bench::F4(result.metrics.at(20).hr),
                  bench::F4(result.metrics.at(10).hr),
                  bench::F4(result.metrics.at(5).hr),
                  bench::F4(result.metrics.at(20).ndcg),
                  bench::F4(result.avg_final_reward)});
  }
  csv.Flush();
  std::printf("\n[reward_shaping] done in %.1fs; CSV: "
              "bench_results/reward_shaping.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
