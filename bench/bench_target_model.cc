// Reproduces the pre-attack target-model quality the paper reports in
// §5.1.3: "the final performance on testing datasets is 0.549 with HR@10
// metrics for ML-10M dataset, and 0.5474 for ML-20M" — i.e. the black-box
// PinSage-style recommender must be a *competent* model before it is
// attacked. This bench trains the target model on both synthetic pairs
// with the paper's protocol (80/10/10 split, early stopping on validation
// HR@10) and reports test HR@10 / NDCG@10.

#include <cstdio>

#include "obs/time.h"
#include "rec/evaluator.h"
#include "util/csv.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace copyattack;
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;

  std::printf("=== Pre-attack target model quality (paper §5.1.3) ===\n\n");
  std::printf("paper: HR@10 = 0.549 (ML10M), 0.5474 (ML20M)\n\n");
  // Named target_quality.csv (not target_model.csv) so it cannot be
  // confused with bench_target_models' per-model attack ablation
  // (target_models.csv).
  util::CsvWriter csv(bench::ResultPath("target_quality.csv"),
                      {"dataset", "epochs", "valid_hr10", "test_hr10",
                       "test_ndcg10"});

  const struct {
    data::SyntheticConfig config;
    std::size_t tree_depth;
  } setups[] = {{data::SyntheticConfig::SmallCross(), 3},
                {data::SyntheticConfig::LargeCross(), 6}};

  for (const auto& setup : setups) {
    const bench::BenchWorld bw =
        bench::BuildBenchWorld(setup.config, setup.tree_depth);
    std::printf("%-30s  epochs=%-3zu  valid HR@10=%s  test HR@10=%s  "
                "test NDCG@10=%s\n",
                setup.config.name.c_str(), bw.train_report.epochs_run,
                bench::F4(bw.train_report.best_valid_hr).c_str(),
                bench::F4(bw.train_report.test_hr).c_str(),
                bench::F4(bw.train_report.test_ndcg).c_str());
    csv.WriteRow({setup.config.name,
                  std::to_string(bw.train_report.epochs_run),
                  bench::F4(bw.train_report.best_valid_hr),
                  bench::F4(bw.train_report.test_hr),
                  bench::F4(bw.train_report.test_ndcg)});
  }
  csv.Flush();
  std::printf("\n[target_model] done in %.1fs; CSV: "
              "bench_results/target_quality.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
