// Reproduces Figure 5: effect of the profile budget Δ on the small
// cross-domain pair (the ML10M-Flixster analog). Expected shape (paper):
// RandomAttack flat regardless of budget; TargetAttack* improve then
// plateau; CopyAttack keeps improving with budget because more injections
// mean more query feedback to train its policies.

#include <cstdio>


#include "bench_common.h"
#include "obs/time.h"

int main(int argc, char** argv) {
  using namespace copyattack;
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;
  std::printf("=== Figure 5: Effect of budget (small pair) ===\n");
  bench::RunBudgetSweep(
      data::SyntheticConfig::SmallCross(), 3,
      {5, 10, 15, 20, 25, 30},
      {"RandomAttack", "TargetAttack40", "TargetAttack70",
       "TargetAttack100", "CopyAttack"},
      30, "fig5_budget_small.csv");
  std::printf("\n[fig5] done in %.1fs; CSV: "
              "bench_results/fig5_budget_small.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
