// Reproduces the paper's §5.2 / appendix scalability claim: the flat
// PolicyNetwork baseline "does not work" on the Netflix-scale source
// domain (no results within 48 hours), while CopyAttack's hierarchical
// tree finishes "in just a few hours". The asymptotic cause is the
// per-decision cost: O(n_B · hidden) for the flat softmax over all source
// users versus O(c · d · hidden) for a root-to-leaf tree walk.
//
// This bench measures the *actual* per-decision wall time of both policy
// architectures while sweeping the source-domain size, and reports the
// measured ratio plus an extrapolation to the paper's Netflix scale
// (478,471 source users).

#include <cstdio>
#include <vector>

#include "cluster/hierarchical_tree.h"
#include "core/flat_policy.h"
#include "core/selection_policy.h"
#include "data/cross_domain.h"
#include "math/matrix.h"
#include "obs/time.h"
#include "util/csv.h"

#include "bench_common.h"

namespace {

using namespace copyattack;

/// Builds a synthetic source domain of `num_users` where every user holds
/// item 0 (so masking keeps the whole pool and both policies do full-size
/// decisions).
data::CrossDomainDataset MakeSource(std::size_t num_users,
                                    std::size_t num_items,
                                    util::Rng& rng) {
  data::CrossDomainDataset dataset("scaling", num_items);
  for (std::size_t i = 0; i < num_items; ++i) dataset.overlap[i] = true;
  for (std::size_t u = 0; u < num_users; ++u) {
    data::Profile profile = {0};
    while (profile.size() < 6) {
      const data::ItemId item =
          static_cast<data::ItemId>(1 + rng.UniformUint64(num_items - 1));
      bool dup = false;
      for (const data::ItemId existing : profile) {
        dup = dup || existing == item;
      }
      if (!dup) profile.push_back(item);
    }
    dataset.source.AddUser(std::move(profile));
  }
  return dataset;
}

double MeasureTreeDecision(const cluster::HierarchicalTree& tree,
                           const math::Matrix& users,
                           const math::Matrix& items, std::size_t rounds) {
  util::Rng init_rng(5);
  core::HierarchicalSelectionPolicy policy(
      &tree, &users, &items, core::HierarchicalSelectionPolicy::Config{},
      init_rng);
  policy.SetTargetItem(0, tree.ComputeMask([](std::size_t) {
    return true;
  }));
  util::Rng rng(7);
  obs::Stopwatch watch;
  for (std::size_t i = 0; i < rounds; ++i) {
    core::SelectionStepRecord record;
    policy.SampleUser({}, rng, &record);
  }
  return watch.ElapsedSeconds() / static_cast<double>(rounds) * 1e6;
}

double MeasureFlatDecision(const data::CrossDomainDataset& dataset,
                           const math::Matrix& users,
                           const math::Matrix& items, std::size_t rounds) {
  core::FlatPolicyNetwork policy(&dataset, &users, &items,
                                 core::FlatPolicyNetwork::Config{}, 5);
  policy.BeginTargetItem(0);
  // Measure decisions through a throwaway environment-free path: the flat
  // policy's decision is its masked softmax over all users, which we time
  // via RunEpisode on a stub env is intrusive — instead time the dominant
  // computation directly: one MLP forward over the full action space.
  util::Rng init_rng(11);
  nn::Mlp mlp("probe",
              {items.cols() + 8, 16, dataset.source.num_users()}, init_rng);
  std::vector<float> state(items.cols() + 8, 0.1f);
  obs::Stopwatch watch;
  float sink = 0.0f;
  for (std::size_t i = 0; i < rounds; ++i) {
    nn::MlpContext ctx;
    const auto logits = mlp.Forward(state, &ctx);
    sink += logits[0];
  }
  volatile float dce_sink = sink;  // defeat dead-code elimination
  (void)dce_sink;
  return watch.ElapsedSeconds() / static_cast<double>(rounds) * 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;
  std::printf("=== Policy scaling: flat PolicyNetwork vs hierarchical "
              "tree ===\n");
  std::printf("(paper: flat policy produced no results on Netflix within "
              "48h;\n CopyAttack finished in a few hours)\n\n");
  std::printf("%10s  %14s  %14s  %8s\n", "users", "tree (us/dec)",
              "flat (us/dec)", "ratio");

  util::CsvWriter csv(bench::ResultPath("policy_scaling.csv"),
                      {"users", "tree_us_per_decision",
                       "flat_us_per_decision", "ratio"});

  const std::size_t num_items = 50;
  util::Rng data_rng(3);
  math::Matrix items(num_items, 8);
  items.FillNormal(data_rng, 0.0f, 0.5f);

  double last_tree_us = 0.0, last_flat_us = 0.0;
  std::size_t last_n = 0;
  for (const std::size_t n : {1000UL, 4000UL, 16000UL, 64000UL}) {
    const auto dataset = MakeSource(n, num_items, data_rng);
    math::Matrix users(n, 8);
    users.FillNormal(data_rng, 0.0f, 0.5f);
    util::Rng tree_rng(13);
    const auto tree =
        cluster::HierarchicalTree::BuildWithDepth(users, 3, tree_rng);

    const std::size_t rounds = 200;
    const double tree_us = MeasureTreeDecision(tree, users, items, rounds);
    const double flat_us =
        MeasureFlatDecision(dataset, users, items, rounds);
    std::printf("%10zu  %14.1f  %14.1f  %7.1fx\n", n, tree_us, flat_us,
                flat_us / tree_us);
    csv.WriteRow({std::to_string(n), bench::F4(tree_us),
                  bench::F4(flat_us), bench::F4(flat_us / tree_us)});
    last_tree_us = tree_us;
    last_flat_us = flat_us;
    last_n = n;
  }

  // Extrapolate to the paper's Netflix source-domain size. The flat cost
  // is linear in n; the tree cost grows with c = n^(1/d) per level.
  const double netflix_users = 478471.0;
  const double flat_extrapolated =
      last_flat_us * netflix_users / static_cast<double>(last_n);
  std::printf("\nExtrapolated to Netflix scale (%.0f source users):\n",
              netflix_users);
  std::printf("  flat policy:  ~%.0f us/decision (linear in users)\n",
              flat_extrapolated);
  std::printf("  tree policy:  ~%.0f us/decision (depth 6, c = n^(1/6))\n",
              last_tree_us);
  std::printf("  -> the flat architecture pays ~%.0fx per decision, which "
              "is the\n     asymptotic gap behind the paper's 48-hour "
              "timeout.\n",
              flat_extrapolated / last_tree_us);

  csv.Flush();
  std::printf("\n[policy_scaling] done in %.1fs; CSV: "
              "bench_results/policy_scaling.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
