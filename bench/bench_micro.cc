// Google-benchmark microbenchmarks for the substrate hot paths: balanced
// tree construction, masked tree-walk decisions, BPR training epochs,
// black-box query scoring, and top-k selection.

#include <benchmark/benchmark.h>

#include "cluster/hierarchical_tree.h"
#include "cluster/kmeans.h"
#include "core/environment.h"
#include "core/selection_policy.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/target_items.h"
#include "math/top_k.h"
#include "math/vector_ops.h"
#include "rec/matrix_factorization.h"
#include "rec/pinsage_lite.h"
#include "util/rng.h"

namespace {

using namespace copyattack;

const data::SyntheticWorld& World() {
  static const data::SyntheticWorld* const world =
      new data::SyntheticWorld(
          data::GenerateSyntheticWorld(data::SyntheticConfig::Tiny()));
  return *world;
}

math::Matrix RandomEmbeddings(std::size_t n, std::size_t dim,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  math::Matrix m(n, dim);
  m.FillNormal(rng, 0.0f, 0.5f);
  return m;
}

void BM_BalancedKMeans(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const math::Matrix points = RandomEmbeddings(n, 8, 11);
  std::vector<std::size_t> subset(n);
  for (std::size_t i = 0; i < n; ++i) subset[i] = i;
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::BalancedKMeans(points, subset, 8, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BalancedKMeans)->Arg(1000)->Arg(4000);

void BM_TreeBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const math::Matrix points = RandomEmbeddings(n, 8, 13);
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(
        cluster::HierarchicalTree::BuildWithDepth(points, 3, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TreeBuild)->Arg(1000)->Arg(4000);

void BM_TreeDecision(benchmark::State& state) {
  const std::size_t n = 4096;
  const math::Matrix users = RandomEmbeddings(n, 8, 17);
  const math::Matrix items = RandomEmbeddings(64, 8, 19);
  util::Rng tree_rng(23);
  const auto tree =
      cluster::HierarchicalTree::BuildWithDepth(users, 3, tree_rng);
  util::Rng init_rng(29);
  core::HierarchicalSelectionPolicy policy(
      &tree, &users, &items, core::HierarchicalSelectionPolicy::Config{},
      init_rng);
  policy.SetTargetItem(0,
                       tree.ComputeMask([](std::size_t) { return true; }));
  util::Rng rng(31);
  for (auto _ : state) {
    core::SelectionStepRecord record;
    benchmark::DoNotOptimize(policy.SampleUser({}, rng, &record));
  }
}
BENCHMARK(BM_TreeDecision);

void BM_MfTrainEpoch(benchmark::State& state) {
  util::Rng split_rng(37);
  const auto split = data::SplitDataset(World().dataset.target, split_rng);
  rec::MatrixFactorization mf;
  util::Rng rng(41);
  mf.InitTraining(split.train, rng);
  for (auto _ : state) {
    mf.TrainEpoch(split.train, rng);
  }
  state.SetItemsProcessed(state.iterations() *
                          split.train.num_interactions());
}
BENCHMARK(BM_MfTrainEpoch);

void BM_PinSageTrainEpoch(benchmark::State& state) {
  util::Rng split_rng(37);
  const auto split = data::SplitDataset(World().dataset.target, split_rng);
  rec::PinSageLite model;
  util::Rng rng(41);
  model.InitTraining(split.train, rng);
  for (auto _ : state) {
    model.TrainEpoch(split.train, rng);
  }
  state.SetItemsProcessed(state.iterations() *
                          split.train.num_interactions());
}
BENCHMARK(BM_PinSageTrainEpoch);

void BM_PinSageScore(benchmark::State& state) {
  util::Rng split_rng(37);
  const auto split = data::SplitDataset(World().dataset.target, split_rng);
  rec::PinSageLite model;
  util::Rng rng(41);
  model.Fit(split.train, 3, rng);
  data::UserId user = 0;
  data::ItemId item = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Score(user, item));
    user = (user + 1) % static_cast<data::UserId>(split.train.num_users());
    item = (item + 7) % static_cast<data::ItemId>(split.train.num_items());
  }
}
BENCHMARK(BM_PinSageScore);

void BM_PinSageObserveNewUser(benchmark::State& state) {
  util::Rng split_rng(37);
  const auto split = data::SplitDataset(World().dataset.target, split_rng);
  rec::PinSageLite prototype;
  util::Rng rng(41);
  prototype.Fit(split.train, 3, rng);
  for (auto _ : state) {
    state.PauseTiming();
    rec::PinSageLite model = prototype;
    data::Dataset polluted = split.train;
    const data::UserId user = polluted.AddUser({0, 1, 2, 3, 4});
    state.ResumeTiming();
    model.ObserveNewUser(polluted, user);
  }
}
BENCHMARK(BM_PinSageObserveNewUser);

void BM_EnvReset(benchmark::State& state) {
  // Steady-state episode Reset on a reused environment: after the first
  // (cold) reset every iteration takes the snapshot/rollback fast path.
  util::Rng split_rng(37);
  const auto split = data::SplitDataset(World().dataset.target, split_rng);
  rec::PinSageLite model;
  util::Rng rng(41);
  model.Fit(split.train, 3, rng);
  util::Rng target_rng(47);
  const auto targets =
      data::SampleColdTargetItems(World().dataset, 1, 10, target_rng);
  core::EnvConfig config;
  config.budget = 6;
  config.num_pretend_users = 10;
  core::AttackEnvironment env(World().dataset, split.train, &model, config);
  env.Reset(targets[0]);  // cold reset outside the timed loop
  const data::Profile injection = {0, 1, 2, 3, 4};
  for (auto _ : state) {
    state.PauseTiming();
    env.Step(data::Profile(injection));  // make the reset non-trivial
    state.ResumeTiming();
    env.Reset(targets[0]);
  }
}
BENCHMARK(BM_EnvReset);

void BM_EnvResetLegacy(benchmark::State& state) {
  // The pre-rollback reset recipe (deep-copy the training data, re-add
  // pretend users, BeginServing) for before/after comparison with
  // BM_EnvReset.
  util::Rng split_rng(37);
  const auto split = data::SplitDataset(World().dataset.target, split_rng);
  rec::PinSageLite model;
  util::Rng rng(41);
  model.Fit(split.train, 3, rng);
  for (auto _ : state) {
    data::Dataset polluted = split.train;
    for (std::size_t i = 0; i < 10; ++i) {
      polluted.AddUser({0, 1, 2, 3, 4});
    }
    model.BeginServing(polluted);
    benchmark::DoNotOptimize(polluted.num_users());
  }
}
BENCHMARK(BM_EnvResetLegacy);

void BM_InjectUser(benchmark::State& state) {
  // Per-injection cost after `range(0)` prior injections in the same
  // episode. Amortized growth means the cost should stay flat across the
  // 0/32/256 columns.
  const std::size_t prior = static_cast<std::size_t>(state.range(0));
  util::Rng split_rng(37);
  const auto split = data::SplitDataset(World().dataset.target, split_rng);
  rec::PinSageLite model;
  util::Rng rng(41);
  model.Fit(split.train, 3, rng);
  data::Dataset polluted = split.train;
  model.BeginServing(polluted);
  const auto checkpoint = polluted.Checkpoint();
  model.CheckpointServing();
  const data::Profile injection = {0, 1, 2, 3, 4};
  for (auto _ : state) {
    state.PauseTiming();
    polluted.RollbackTo(checkpoint);
    model.RollbackServing();
    for (std::size_t i = 0; i < prior; ++i) {
      const data::UserId u = polluted.AddUser(data::Profile(injection));
      model.ObserveNewUser(polluted, u);
    }
    state.ResumeTiming();
    const data::UserId user = polluted.AddUser(data::Profile(injection));
    model.ObserveNewUser(polluted, user);
  }
}
BENCHMARK(BM_InjectUser)->Arg(0)->Arg(32)->Arg(256);

void BM_Dot(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const math::Matrix m = RandomEmbeddings(2, n, 53);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::Dot(m.Row(0), m.Row(1), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dot)->Arg(16)->Arg(64)->Arg(256);

void BM_Axpy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  math::Matrix m = RandomEmbeddings(2, n, 59);
  for (auto _ : state) {
    math::Axpy(0.001f, m.Row(0), m.Row(1), n);
    benchmark::DoNotOptimize(m.Row(1)[0]);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Axpy)->Arg(16)->Arg(64)->Arg(256);

void BM_SquaredDistance(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const math::Matrix m = RandomEmbeddings(2, n, 61);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::SquaredDistance(m.Row(0), m.Row(1), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SquaredDistance)->Arg(16)->Arg(64)->Arg(256);

void BM_TopK(benchmark::State& state) {
  util::Rng rng(43);
  std::vector<float> scores(static_cast<std::size_t>(state.range(0)));
  for (auto& s : scores) s = static_cast<float>(rng.UniformDouble());
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::TopKIndices(scores, 20));
  }
  state.SetItemsProcessed(state.iterations() * scores.size());
}
BENCHMARK(BM_TopK)->Arg(101)->Arg(1000)->Arg(10000);

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        data::GenerateSyntheticWorld(data::SyntheticConfig::Tiny()));
  }
}
BENCHMARK(BM_SyntheticGeneration);

}  // namespace

BENCHMARK_MAIN();
