// Ablation: which target models are attackable through which channel.
//
// The paper attacks an *inductive* GNN recommender (PinSage): injected
// profiles change item representations at serving time without retraining.
// A purely transductive target (plain MF) has no such channel — it only
// becomes attackable when the platform periodically retrains on the
// polluted data. This bench runs TargetAttack40 against three targets:
//
//   1. PinSageLite, inductive serving (the paper's setting),
//   2. MF, frozen (no retraining)            -> attack should do nothing,
//   3. MF, fine-tuned at every query round   -> attack works again,
//   4. ItemKNN, frozen                        -> no channel,
//   5. ItemKNN, rebuilt at every query round  -> the classic shilling
//      surface (injected co-occurrences enter the similarity lists).

#include <cstdio>
#include <memory>

#include "data/target_items.h"
#include "obs/time.h"
#include "rec/item_knn.h"
#include "rec/matrix_factorization.h"
#include "rec/trainer.h"
#include "util/csv.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace copyattack;
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;
  std::printf("=== Ablation: inductive vs transductive target model ===\n");

  const data::SyntheticConfig config = data::SyntheticConfig::SmallCross();
  const bench::BenchWorld bw = bench::BuildBenchWorld(config, 3);

  // Trained MF and ItemKNN targets for the transductive variants.
  rec::MatrixFactorization mf_prototype;
  rec::TrainOptions train_options;
  util::Rng mf_rng(31);
  const auto mf_report = rec::TrainWithEarlyStopping(
      mf_prototype, bw.split, bw.world.dataset.target, train_options,
      mf_rng);
  rec::ItemKnn knn_prototype;
  util::Rng knn_rng(37);
  knn_prototype.Fit(bw.split.train, 1, knn_rng);
  std::printf("MF target test HR@10 = %s (PinSageLite: %s)\n",
              bench::F4(mf_report.test_hr).c_str(),
              bench::F4(bw.train_report.test_hr).c_str());

  util::Rng target_rng(1789);
  const auto targets =
      data::SampleColdTargetItems(bw.world.dataset, 25, 10, target_rng);

  util::CsvWriter csv(bench::ResultPath("target_models.csv"),
                      {"target_model", "hr20_clean", "hr20_attacked"});

  struct Variant {
    const char* name;
    core::ModelFactory factory;
    bool refit;
  };
  const Variant variants[] = {
      {"PinSage-inductive",
       [&] { return std::make_unique<rec::PinSageLite>(bw.model); }, false},
      {"MF-frozen",
       [&] { return std::make_unique<rec::MatrixFactorization>(mf_prototype); },
       false},
      {"MF-refit-on-query",
       [&] { return std::make_unique<rec::MatrixFactorization>(mf_prototype); },
       true},
      {"ItemKNN-frozen",
       [&] { return std::make_unique<rec::ItemKnn>(knn_prototype); },
       false},
      {"ItemKNN-refit",
       [&] { return std::make_unique<rec::ItemKnn>(knn_prototype); },
       true},
  };

  std::printf("\n%-20s clean-HR@20  attacked-HR@20  lift\n", "target");
  for (const Variant& variant : variants) {
    core::CampaignConfig campaign = bench::DefaultCampaign(4242);
    campaign.episodes = 1;
    campaign.env.refit_on_query = variant.refit;
    campaign.env.refit_epochs = 1;

    const auto clean = core::EvaluateWithoutAttack(
        bw.world.dataset, bw.split.train, variant.factory, targets,
        campaign);
    const auto attacked = core::RunCampaign(
        bw.world.dataset, bw.split.train, variant.factory,
        [&](std::uint64_t) {
          return std::make_unique<core::TargetAttack>(bw.world.dataset, 0.4);
        },
        targets, campaign);

    std::printf("%-20s %s       %s          %+0.4f\n", variant.name,
                bench::F4(clean.metrics.at(20).hr).c_str(),
                bench::F4(attacked.metrics.at(20).hr).c_str(),
                attacked.metrics.at(20).hr - clean.metrics.at(20).hr);
    csv.WriteRow({variant.name, bench::F4(clean.metrics.at(20).hr),
                  bench::F4(attacked.metrics.at(20).hr)});
  }
  csv.Flush();
  std::printf("\n[target_models] done in %.1fs; CSV: "
              "bench_results/target_models.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
