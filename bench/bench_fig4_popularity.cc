// Reproduces Figure 4: effect of target-item popularity on attack
// effectiveness. Overlapping items are split into 10 popularity groups
// (group 1 = most popular); CopyAttack attacks a sample from each group.
// The paper finds popular items are the most vulnerable (the top ~30%
// groups show the highest post-attack HR@20/NDCG@20).

#include <cstdio>
#include <vector>

#include "data/target_items.h"
#include "obs/time.h"
#include "util/csv.h"

#include "bench_common.h"

namespace {

void RunDataset(const copyattack::data::SyntheticConfig& config,
                std::size_t tree_depth, std::size_t per_group,
                copyattack::util::CsvWriter& csv) {
  using namespace copyattack;

  const bench::BenchWorld bw = bench::BuildBenchWorld(config, tree_depth);
  util::Rng target_rng(97);
  const auto groups = data::SampleTargetsByPopularityGroup(
      bw.world.dataset, 10, per_group, target_rng);

  std::printf("\n--- %s (%zu items per popularity group) ---\n",
              config.name.c_str(), per_group);
  std::printf("group  mean_pop  HR@20   NDCG@20\n");
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].empty()) continue;
    double mean_pop = 0.0;
    for (const data::ItemId item : groups[g]) {
      mean_pop += static_cast<double>(
          bw.world.dataset.target.ItemPopularity(item));
    }
    mean_pop /= static_cast<double>(groups[g].size());

    const core::CampaignConfig campaign = bench::DefaultCampaign(4242 + g);
    const auto result = core::RunCampaign(
        bw.world.dataset, bw.split.train, bw.ModelFactory(),
        [&](std::uint64_t seed) {
          return bench::MakeStrategy("CopyAttack", bw, seed);
        },
        groups[g], campaign);

    std::printf("%-5zu  %-8.1f  %s  %s\n", g + 1, mean_pop,
                bench::F4(result.metrics.at(20).hr).c_str(),
                bench::F4(result.metrics.at(20).ndcg).c_str());
    csv.WriteRow({config.name, std::to_string(g + 1),
                  bench::F4(mean_pop),
                  bench::F4(result.metrics.at(20).hr),
                  bench::F4(result.metrics.at(20).ndcg)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace copyattack;
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;
  std::printf("=== Figure 4: Effect of item popularity ===\n");

  util::CsvWriter csv(bench::ResultPath("fig4_popularity.csv"),
                      {"dataset", "group", "mean_popularity", "hr20",
                       "ndcg20"});

  RunDataset(data::SyntheticConfig::SmallCross(), 3, 10, csv);
  RunDataset(data::SyntheticConfig::LargeCross(), 6, 10, csv);

  csv.Flush();
  std::printf("\n[fig4] done in %.1fs; CSV: "
              "bench_results/fig4_popularity.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
