// Quantifies the paper's premise (its §1 motivation): fabricated shilling
// profiles are easy to detect because their statistics differ from real
// users', while *copied cross-domain profiles are naturally real*. This is
// not a table in the paper — it is the measurable version of the claim the
// whole method rests on.
//
// Protocol: extract detectability features of (a) genuine target-domain
// profiles, (b) classic fabricated shilling profiles (target + random
// filler), (c) raw copied source profiles, (d) CopyAttack-crafted windows.
// Two unsupervised detectors fit on genuine profiles score each population.
// AUC 0.5 = indistinguishable from genuine users; 1.0 = trivially caught.

#include <cstdio>
#include <memory>

#include "core/crafting.h"
#include "data/target_items.h"
#include "defense/detectors.h"
#include "defense/profile_features.h"
#include "obs/time.h"
#include "rec/matrix_factorization.h"
#include "util/csv.h"

#include "bench_common.h"

namespace {

using namespace copyattack;

std::vector<defense::ProfileFeatures> ExtractAll(
    const defense::ProfileFeatureExtractor& extractor,
    const std::vector<data::Profile>& profiles, util::Rng& rng) {
  std::vector<defense::ProfileFeatures> features;
  features.reserve(profiles.size());
  for (const data::Profile& profile : profiles) {
    features.push_back(extractor.Extract(profile, rng));
  }
  return features;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;
  std::printf("=== Defense: detectability of attack profile populations ===\n");
  std::printf("(AUC 0.5 = indistinguishable from genuine users)\n\n");

  const data::SyntheticWorld world =
      data::GenerateSyntheticWorld(data::SyntheticConfig::SmallCross());
  util::Rng mf_rng(3);
  rec::MatrixFactorization mf;
  mf.Fit(world.dataset.target, 15, mf_rng);
  const defense::ProfileFeatureExtractor extractor(&world.dataset.target,
                                                   &mf.item_embeddings());

  util::Rng rng(7);
  const auto targets =
      data::SampleColdTargetItems(world.dataset, 25, 10, rng);

  // Population (a): genuine profiles.
  std::vector<data::Profile> genuine;
  for (int i = 0; i < 500; ++i) {
    const data::UserId u = static_cast<data::UserId>(
        rng.UniformUint64(world.dataset.target.num_users()));
    genuine.push_back(world.dataset.target.UserProfile(u));
  }

  // Population (b): fabricated shilling profiles (target + random filler).
  std::vector<data::Profile> fabricated;
  for (int i = 0; i < 300; ++i) {
    const data::ItemId target = targets[rng.UniformUint64(targets.size())];
    data::Profile fake = {target};
    while (fake.size() < 25) {
      const data::ItemId item = static_cast<data::ItemId>(
          rng.UniformUint64(world.dataset.target.num_items()));
      bool dup = false;
      for (const data::ItemId existing : fake) dup = dup || existing == item;
      if (!dup) fake.push_back(item);
    }
    fabricated.push_back(std::move(fake));
  }

  // Populations (c) raw copied and (d) crafted windows.
  std::vector<data::Profile> copied_raw, crafted;
  for (const data::ItemId target : targets) {
    for (const data::UserId holder : world.dataset.SourceHolders(target)) {
      if (copied_raw.size() < 300) {
        copied_raw.push_back(world.dataset.source.UserProfile(holder));
        crafted.push_back(core::ClipProfileAroundTarget(
            world.dataset.source.UserProfile(holder), target, 0.4));
      }
    }
  }

  const auto genuine_features = ExtractAll(extractor, genuine, rng);
  const struct {
    const char* name;
    std::vector<data::Profile>* profiles;
  } populations[] = {{"fabricated-shilling", &fabricated},
                     {"copied-raw", &copied_raw},
                     {"copyattack-crafted", &crafted}};

  defense::ZScoreDetector zscore;
  defense::KnnDetector knn(5);
  zscore.Fit(genuine_features);
  knn.Fit(genuine_features);

  util::CsvWriter csv(bench::ResultPath("defense_detectability.csv"),
                      {"population", "zscore_auc", "zscore_recall_at_5fpr",
                       "knn_auc", "knn_recall_at_5fpr"});
  std::printf("%-22s  zscore-AUC  recall@5%%FPR  knn-AUC  recall@5%%FPR\n",
              "population");
  for (const auto& population : populations) {
    const auto features = ExtractAll(extractor, *population.profiles, rng);
    const auto z_report =
        defense::EvaluateDetector(zscore, genuine_features, features);
    const auto k_report =
        defense::EvaluateDetector(knn, genuine_features, features);
    std::printf("%-22s  %.3f       %.3f         %.3f    %.3f\n",
                population.name, z_report.auc, z_report.recall_at_fpr,
                k_report.auc, k_report.recall_at_fpr);
    csv.WriteRow({population.name, bench::F4(z_report.auc),
                  bench::F4(z_report.recall_at_fpr),
                  bench::F4(k_report.auc),
                  bench::F4(k_report.recall_at_fpr)});
  }
  csv.Flush();
  std::printf("\n[defense] done in %.1fs; CSV: "
              "bench_results/defense_detectability.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
