// Extension experiments for the paper's future-work directions (§6):
//
//   1. **Proxy targeting** — promoting target items that have *no* source
//      holders by anchoring CopyAttack on their most co-occurring
//      overlapping item (core/proxy.h).
//   2. **Demotion** — pushing an initially well-ranked item out of Top-k
//      lists using the same machinery with reward 1 - HR@k.

#include <cstdio>
#include <memory>

#include "core/proxy.h"
#include "data/target_items.h"
#include "obs/time.h"
#include "util/csv.h"

#include "bench_common.h"

namespace {

using namespace copyattack;

void RunProxyExperiment(const bench::BenchWorld& bw,
                        util::CsvWriter& csv) {
  // Target items with target-domain interactions but no source holders.
  std::vector<data::ItemId> orphans;
  for (data::ItemId item = 0; item < bw.world.dataset.target.num_items();
       ++item) {
    if (bw.world.dataset.SourceHolders(item).empty() &&
        bw.world.dataset.target.ItemPopularity(item) > 0 &&
        bw.world.dataset.target.ItemPopularity(item) < 10) {
      orphans.push_back(item);
    }
    if (orphans.size() >= 20) break;
  }
  std::printf("\n-- proxy targeting: %zu cold items absent from the source "
              "domain --\n",
              orphans.size());
  if (orphans.empty()) {
    std::printf("   (none in this world; skipped)\n");
    return;
  }

  core::CampaignConfig campaign = bench::DefaultCampaign(909);
  const auto clean = core::EvaluateWithoutAttack(
      bw.world.dataset, bw.split.train, bw.ModelFactory(), orphans,
      campaign);
  const auto attacked = core::RunCampaign(
      bw.world.dataset, bw.split.train, bw.ModelFactory(),
      [&](std::uint64_t seed) {
        core::CopyAttackConfig config;
        config.allow_proxy = true;
        return std::make_unique<core::CopyAttack>(
            &bw.world.dataset, &bw.artifacts.tree,
            &bw.artifacts.mf.user_embeddings(),
            &bw.artifacts.mf.item_embeddings(), config, seed);
      },
      orphans, campaign);
  std::printf("   HR@20 %s -> %s   HR@10 %s -> %s\n",
              bench::F4(clean.metrics.at(20).hr).c_str(),
              bench::F4(attacked.metrics.at(20).hr).c_str(),
              bench::F4(clean.metrics.at(10).hr).c_str(),
              bench::F4(attacked.metrics.at(10).hr).c_str());
  csv.WriteRow({"proxy-promotion", bench::F4(clean.metrics.at(20).hr),
                bench::F4(attacked.metrics.at(20).hr)});
}

void RunDemotionExperiment(const bench::BenchWorld& bw,
                           util::CsvWriter& csv) {
  // Targets: popular overlapping items (the ones users actually see).
  util::Rng rng(911);
  const auto groups = data::SampleTargetsByPopularityGroup(
      bw.world.dataset, 10, 15, rng);
  const std::vector<data::ItemId>& popular = groups.at(0);
  std::printf("\n-- demotion: %zu popular items --\n", popular.size());

  core::CampaignConfig campaign = bench::DefaultCampaign(912);
  campaign.env.goal = core::AttackGoal::kDemote;
  const auto clean = core::EvaluateWithoutAttack(
      bw.world.dataset, bw.split.train, bw.ModelFactory(), popular,
      campaign);
  const auto attacked = core::RunCampaign(
      bw.world.dataset, bw.split.train, bw.ModelFactory(),
      [&](std::uint64_t seed) {
        return bench::MakeStrategy("CopyAttack", bw, seed);
      },
      popular, campaign);
  std::printf("   HR@20 of demoted items: %s -> %s (lower is a stronger "
              "demotion)\n",
              bench::F4(clean.metrics.at(20).hr).c_str(),
              bench::F4(attacked.metrics.at(20).hr).c_str());
  csv.WriteRow({"demotion", bench::F4(clean.metrics.at(20).hr),
                bench::F4(attacked.metrics.at(20).hr)});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;
  std::printf("=== Extensions: proxy targeting and demotion (paper §6) ===\n");

  const bench::BenchWorld bw =
      bench::BuildBenchWorld(data::SyntheticConfig::SmallCross(), 3);
  util::CsvWriter csv(bench::ResultPath("extensions.csv"),
                      {"experiment", "hr20_before", "hr20_after"});

  RunProxyExperiment(bw, csv);
  RunDemotionExperiment(bw, csv);

  csv.Flush();
  std::printf("\n[extensions] done in %.1fs; CSV: "
              "bench_results/extensions.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
