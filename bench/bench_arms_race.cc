// The attack-zoo / defense arms race (ISSUE 8): for each attacking method
// {CopyAttack, SurrogateTransfer, Influence}, run real campaigns, measure
// attack success (HR@20 over real users on the final polluted state), then
// hand the attacker's *actual injected profiles* to each detector
// {ZScore, kNN, Adaptive} — the adaptive one retrained on half of those
// very profiles, the defender's second move. The product is the
// HR@k-vs-detectability frontier: how much promotion each method buys per
// unit of exposure to an adapting defense.
//
// Output: bench_results/arms_race_frontier.csv with one row per
// strategy × detector cell:
//   strategy,detector,hr20,auc,recall_at_5fpr,profiles
// (hr20 is per strategy; auc/recall are the detector's separability on a
// held-out half of the injected profiles, never the half the adaptive
// detector trained on.)

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/environment.h"
#include "data/target_items.h"
#include "defense/adaptive_detector.h"
#include "defense/detectors.h"
#include "defense/profile_features.h"
#include "obs/time.h"
#include "rec/matrix_factorization.h"
#include "serve/attack_server.h"
#include "util/csv.h"
#include "util/rng.h"

#include "bench_common.h"

namespace {

using namespace copyattack;

std::vector<defense::ProfileFeatures> ExtractAll(
    const defense::ProfileFeatureExtractor& extractor,
    const std::vector<data::Profile>& profiles, util::Rng& rng) {
  std::vector<defense::ProfileFeatures> features;
  features.reserve(profiles.size());
  for (const data::Profile& profile : profiles) {
    features.push_back(extractor.Extract(profile, rng));
  }
  return features;
}

/// Per-preset campaign sizing: `tiny` is the CI smoke (seconds), `small`
/// the real frontier.
struct RaceConfig {
  data::SyntheticConfig world;
  std::size_t num_targets = 6;
  std::size_t budget = 30;
  std::size_t episodes = 6;
  std::size_t pretend_users = 20;
  std::size_t query_candidates = 50;
  std::size_t eval_users = 200;
  std::size_t eval_negatives = 50;
  std::size_t genuine_profiles = 300;
};

RaceConfig TinyRace() {
  RaceConfig config;
  config.world = data::SyntheticConfig::Tiny();
  config.num_targets = 3;
  config.budget = 6;
  config.episodes = 3;
  config.pretend_users = 10;
  config.eval_users = 100;
  config.genuine_profiles = 120;
  return config;
}

RaceConfig SmallRace() {
  RaceConfig config;
  config.world = data::SyntheticConfig::SmallCross();
  return config;
}

/// One strategy's campaign output: mean HR@20 over the targets plus every
/// profile it actually injected in the final (eval-mode) episodes.
struct StrategyOutcome {
  double hr20 = 0.0;
  std::vector<data::Profile> injected;
};

StrategyOutcome RunStrategy(const bench::BenchWorld& bw,
                            const RaceConfig& race,
                            const std::string& method,
                            const std::vector<data::ItemId>& targets) {
  const serve::StrategySpec spec =
      serve::MakeStrategyFactory(bw.world.dataset, bw.artifacts, method);
  if (!spec.factory) {
    std::fprintf(stderr, "bench_arms_race: %s\n", spec.error.c_str());
    std::exit(1);
  }

  StrategyOutcome outcome;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const std::uint64_t item_seed = 77 + 1000003ULL * t;
    core::EnvConfig env_config;
    env_config.budget = race.budget;
    env_config.num_pretend_users = race.pretend_users;
    env_config.query_candidates = race.query_candidates;
    env_config.seed = item_seed;
    const auto model = bw.ModelFactory()();
    core::AttackEnvironment env(bw.world.dataset, bw.split.train,
                                model.get(), env_config);

    const auto strategy = spec.factory(item_seed);
    strategy->BeginTargetItem(targets[t]);
    util::Rng episode_rng(item_seed ^ 0xBEEFCAFEULL);
    for (std::size_t episode = 0; episode < race.episodes; ++episode) {
      if (episode + 1 == race.episodes) strategy->SetEvalMode(true);
      env.Reset(targets[t]);
      strategy->RunEpisode(env, episode_rng);
    }

    const auto metrics = env.EvaluateRealPromotion(
        {20}, race.eval_users, race.eval_negatives);
    outcome.hr20 += metrics.at(20).hr;

    // Harvest the final episode's injected profiles: the polluted rows
    // past the training users and the attacker's pretend accounts.
    const data::Dataset& polluted = env.black_box().polluted();
    const std::size_t base =
        bw.split.train.num_users() + env.pretend_users().size();
    for (data::UserId u = static_cast<data::UserId>(base);
         u < polluted.num_users(); ++u) {
      outcome.injected.push_back(polluted.UserProfile(u));
    }
  }
  outcome.hr20 /= static_cast<double>(targets.size());
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;

  RaceConfig race = SmallRace();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--config=tiny") == 0) {
      race = TinyRace();
    } else if (std::strcmp(argv[i], "--config=small") == 0) {
      race = SmallRace();
    }
  }

  std::printf("=== Arms race: attack zoo x detector zoo frontier ===\n\n");
  const bench::BenchWorld bw = bench::BuildBenchWorld(race.world, 3);

  // Platform-side detector inputs: item embeddings the defender trained
  // itself, genuine profiles from its clean data.
  util::Rng mf_rng(3);
  rec::MatrixFactorization platform_mf;
  platform_mf.Fit(bw.world.dataset.target, 15, mf_rng);
  const defense::ProfileFeatureExtractor extractor(
      &bw.world.dataset.target, &platform_mf.item_embeddings());

  util::Rng rng(7);
  std::vector<data::Profile> genuine;
  genuine.reserve(race.genuine_profiles);
  for (std::size_t i = 0; i < race.genuine_profiles; ++i) {
    const data::UserId u = static_cast<data::UserId>(
        rng.UniformUint64(bw.world.dataset.target.num_users()));
    genuine.push_back(bw.world.dataset.target.UserProfile(u));
  }
  const auto genuine_features = ExtractAll(extractor, genuine, rng);

  const auto targets = data::SampleColdTargetItems(
      bw.world.dataset, race.num_targets, 10, rng);
  if (targets.empty()) {
    std::fprintf(stderr, "bench_arms_race: no cold target items\n");
    return 1;
  }

  defense::ZScoreDetector zscore;
  defense::KnnDetector knn(5);
  zscore.Fit(genuine_features);
  knn.Fit(genuine_features);

  const std::vector<std::string> strategies = {
      "CopyAttack", "SurrogateTransfer", "Influence"};

  util::CsvWriter csv(bench::ResultPath("arms_race_frontier.csv"),
                      {"strategy", "detector", "hr20", "auc",
                       "recall_at_5fpr", "profiles"});
  std::printf("%-18s %-9s  %-7s  %-6s  %s\n", "strategy", "detector",
              "hr20", "auc", "recall@5%FPR");

  for (const std::string& strategy : strategies) {
    const StrategyOutcome outcome =
        RunStrategy(bw, race, strategy, targets);
    const auto injected_features =
        ExtractAll(extractor, outcome.injected, rng);

    // The adaptive detector trains on one half of the injected profiles;
    // every detector is evaluated on the other half, so the supervised one
    // is never scored on its own training rows.
    std::vector<defense::ProfileFeatures> fit_half, eval_half;
    for (std::size_t i = 0; i < injected_features.size(); ++i) {
      (i % 2 == 0 ? fit_half : eval_half).push_back(injected_features[i]);
    }
    if (fit_half.empty() || eval_half.empty()) {
      std::fprintf(stderr,
                   "bench_arms_race: %s injected too few profiles (%zu)\n",
                   strategy.c_str(), outcome.injected.size());
      return 1;
    }
    defense::AdaptiveDetector adaptive;
    adaptive.FitAdaptive(genuine_features, fit_half);

    const defense::AnomalyDetector* detectors[] = {&zscore, &knn,
                                                   &adaptive};
    for (const defense::AnomalyDetector* detector : detectors) {
      const defense::DetectionReport report = defense::EvaluateDetector(
          *detector, genuine_features, eval_half);
      std::printf("%-18s %-9s  %.4f   %.4f  %.4f\n", strategy.c_str(),
                  detector->name().c_str(), outcome.hr20, report.auc,
                  report.recall_at_fpr);
      csv.WriteRow({strategy, detector->name(), bench::F4(outcome.hr20),
                    bench::F4(report.auc), bench::F4(report.recall_at_fpr),
                    std::to_string(outcome.injected.size())});
    }
  }
  csv.Flush();
  std::printf("\n[arms_race] done in %.1fs; CSV: "
              "bench_results/arms_race_frontier.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
