// Reproduces Figure 6 (appendix): effect of the profile budget Δ on the
// large cross-domain pair (the ML20M-Netflix analog). The flat
// PolicyNetwork baseline is omitted from the sweep exactly as in the
// paper, where it could not produce results on this dataset within 48
// hours (see bench_policy_scaling for the cost measurement).

#include <cstdio>


#include "bench_common.h"
#include "obs/time.h"

int main(int argc, char** argv) {
  using namespace copyattack;
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;
  std::printf("=== Figure 6: Effect of budget (large pair) ===\n");
  bench::RunBudgetSweep(
      data::SyntheticConfig::LargeCross(), 6,
      {5, 10, 15, 20, 25, 30},
      {"RandomAttack", "TargetAttack40", "TargetAttack70",
       "TargetAttack100", "CopyAttack"},
      30, "fig6_budget_large.csv");
  std::printf("\n[fig6] done in %.1fs; CSV: "
              "bench_results/fig6_budget_large.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
