#ifndef COPYATTACK_BENCH_BENCH_COMMON_H_
#define COPYATTACK_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "core/copy_attack.h"
#include "core/flat_policy.h"
#include "core/runner.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "rec/pinsage_lite.h"
#include "rec/trainer.h"

namespace copyattack::bench {

/// Everything one experiment binary needs for one dataset pair: the
/// synthetic world, the target-domain split, the trained black-box target
/// model, and the shared source-domain artifacts (MF embeddings + the
/// balanced clustering tree).
struct BenchWorld {
  data::SyntheticWorld world;
  data::TrainValidTestSplit split;
  rec::PinSageLite model;
  rec::TrainReport train_report;
  core::SourceArtifacts artifacts;

  BenchWorld(data::SyntheticWorld w, data::TrainValidTestSplit s,
             rec::PinSageLite m, rec::TrainReport r,
             core::SourceArtifacts a)
      : world(std::move(w)),
        split(std::move(s)),
        model(std::move(m)),
        train_report(r),
        artifacts(std::move(a)) {}

  core::ModelFactory ModelFactory() const {
    return [this] { return std::make_unique<rec::PinSageLite>(model); };
  }
};

/// Builds a BenchWorld: generates the world, splits 80/10/10, trains the
/// PinSage-style target model with early stopping on validation HR@10
/// (paper §5.1.3), and prepares the source artifacts with the given tree
/// depth (paper: 3 for the small pair, 6 for the large pair).
BenchWorld BuildBenchWorld(const data::SyntheticConfig& config,
                           std::size_t tree_depth);

/// The method names of Table 2, in paper order (excluding WithoutAttack,
/// which the runner handles separately).
const std::vector<std::string>& Table2Methods();

/// Instantiates an attack strategy by its Table-2 name.
std::unique_ptr<core::AttackStrategy> MakeStrategy(const std::string& name,
                                                   const BenchWorld& bw,
                                                   std::uint64_t seed);

/// Episodes a method trains for (1 for non-learning baselines).
std::size_t EpisodesForMethod(const std::string& name,
                              std::size_t learning_episodes);

/// Default campaign configuration used across the experiment binaries
/// (paper §5.1.3: budget 30, query every 3 injections, 50 pretend users).
core::CampaignConfig DefaultCampaign(std::uint64_t seed);

/// Ensures ./bench_results exists and returns "bench_results/<name>".
std::string ResultPath(const std::string& name);

/// Shared implementation of Figures 5 and 6: sweeps the profile budget Δ
/// and reports HR@20 / NDCG@20 per method. Writes
/// `bench_results/<csv_name>` and prints one series per method.
void RunBudgetSweep(const data::SyntheticConfig& config,
                    std::size_t tree_depth,
                    const std::vector<std::size_t>& budgets,
                    const std::vector<std::string>& methods,
                    std::size_t num_targets, const std::string& csv_name);

/// Formats a double with 4 decimals (Table-2 style).
std::string F4(double value);

/// Opt-in campaign telemetry for experiment binaries. Construct first thing
/// in main(); when `--telemetry_out=DIR` is on the command line (or the
/// COPYATTACK_TELEMETRY_OUT environment variable is set) it enables the
/// obs subsystem for the binary's lifetime and exports metrics.csv,
/// summary.json and trace.json into DIR on destruction. Without either,
/// it is a no-op and the instrumentation stays at its disabled cost.
class TelemetryScope {
 public:
  TelemetryScope(int argc, const char* const* argv);
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;
  ~TelemetryScope();

  bool active() const { return !dir_.empty(); }

 private:
  std::string dir_;
};

}  // namespace copyattack::bench

#endif  // COPYATTACK_BENCH_BENCH_COMMON_H_
