// Reproduces Table 1: statistics of the two cross-domain dataset pairs.
//
// The paper's pairs are (ML10M, Flixster) and (ML20M, Netflix); this repo
// substitutes laptop-scale synthetic worlds with the same structural
// properties (see DESIGN.md §2), so the row *shapes* — a much larger source
// domain, a large item overlap, far more source interactions — are the
// reproduction target, not the absolute counts.

#include <cstdio>

#include "data/stats.h"
#include "data/synthetic.h"
#include "obs/time.h"
#include "util/csv.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace copyattack;
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;

  std::printf("=== Table 1: Statistics of Two (Synthetic) Datasets ===\n\n");
  util::CsvWriter csv(bench::ResultPath("table1_datasets.csv"),
                      {"dataset", "target_users", "target_items",
                       "target_interactions", "source_users",
                       "overlapping_items", "source_interactions"});

  for (const auto& config : {data::SyntheticConfig::SmallCross(),
                             data::SyntheticConfig::LargeCross()}) {
    const data::SyntheticWorld world = data::GenerateSyntheticWorld(config);
    const data::CrossDomainStats stats = data::ComputeStats(world.dataset);
    std::printf("%s", data::FormatStats(stats).c_str());
    std::printf("  Target  mean profile length:   %.1f\n",
                stats.target_mean_profile_len);
    std::printf("  Source  mean profile length:   %.1f\n\n",
                stats.source_mean_profile_len);
    csv.WriteRow({stats.name, std::to_string(stats.target_users),
                  std::to_string(stats.target_items),
                  std::to_string(stats.target_interactions),
                  std::to_string(stats.source_users),
                  std::to_string(stats.overlapping_items),
                  std::to_string(stats.source_interactions)});
  }
  csv.Flush();
  std::printf("[table1] done in %.1fs; CSV: bench_results/table1_datasets.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
