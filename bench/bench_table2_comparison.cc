// Reproduces Table 2: attacking performance of all methods on both
// cross-domain dataset pairs — HR@{20,10,5}, NDCG@{20,10,5}, and the
// average number of items per injected user profile (the item budget).
//
// Protocol (paper §5.1.3): 50 cold target items (<10 interactions),
// profile budget Δ=30, 50 pretend users, queries after every 3 injections.
// Expected *shape* (paper Table 2):
//   - RandomAttack ≈ WithoutAttack (no promotion),
//   - TargetAttack40/70 > TargetAttack100 (crafting helps),
//   - CopyAttack-Masking ≈ WithoutAttack (masking is essential),
//   - CopyAttack-Length weak with a huge item budget (crafting matters),
//   - CopyAttack best overall with a moderate item budget.

#include <cstdio>
#include <vector>

#include "data/target_items.h"
#include "obs/time.h"
#include "util/csv.h"

#include "bench_common.h"

namespace {

void RunDataset(const copyattack::data::SyntheticConfig& config,
                std::size_t tree_depth, std::size_t num_targets,
                copyattack::util::CsvWriter& csv) {
  using namespace copyattack;

  const bench::BenchWorld bw = bench::BuildBenchWorld(config, tree_depth);
  util::Rng target_rng(1789);
  const std::vector<data::ItemId> targets =
      data::SampleColdTargetItems(bw.world.dataset, num_targets, 10,
                                  target_rng);
  std::printf("\n--- %s (%zu target items, budget 30) ---\n",
              config.name.c_str(), targets.size());
  std::printf("%s\n", core::CampaignRowHeader().c_str());

  auto emit = [&](const core::CampaignResult& result) {
    std::printf("%s\n", core::FormatCampaignRow(result).c_str());
    csv.WriteRow({config.name, result.method,
                  bench::F4(result.metrics.at(20).hr),
                  bench::F4(result.metrics.at(10).hr),
                  bench::F4(result.metrics.at(5).hr),
                  bench::F4(result.metrics.at(20).ndcg),
                  bench::F4(result.metrics.at(10).ndcg),
                  bench::F4(result.metrics.at(5).ndcg),
                  bench::F4(result.avg_items_per_profile),
                  bench::F4(result.wall_seconds)});
  };

  const core::CampaignConfig base = bench::DefaultCampaign(4242);
  emit(core::EvaluateWithoutAttack(bw.world.dataset, bw.split.train,
                                   bw.ModelFactory(), targets, base));

  for (const std::string& method : bench::Table2Methods()) {
    core::CampaignConfig campaign = base;
    campaign.episodes = bench::EpisodesForMethod(method, base.episodes);
    const auto result = core::RunCampaign(
        bw.world.dataset, bw.split.train, bw.ModelFactory(),
        [&](std::uint64_t seed) {
          return bench::MakeStrategy(method, bw, seed);
        },
        targets, campaign);
    emit(result);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace copyattack;
  const bench::TelemetryScope telemetry(argc, argv);
  obs::Stopwatch watch;
  std::printf("=== Table 2: Performance comparison of attacking methods ===\n");

  util::CsvWriter csv(bench::ResultPath("table2_comparison.csv"),
                      {"dataset", "method", "hr20", "hr10", "hr5", "ndcg20",
                       "ndcg10", "ndcg5", "items_per_profile", "wall_s"});

  RunDataset(data::SyntheticConfig::SmallCross(), 3, 50, csv);
  RunDataset(data::SyntheticConfig::LargeCross(), 6, 50, csv);

  csv.Flush();
  std::printf("\n[table2] done in %.1fs; CSV: "
              "bench_results/table2_comparison.csv\n",
              watch.ElapsedSeconds());
  return 0;
}
